//! Low-level STEP (ISO 10303-21) reader for the IFC subset Vita consumes.
//!
//! Real IFC files are STEP "physical files": a `HEADER;` section followed by
//! a `DATA;` section of records shaped like
//!
//! ```text
//! #17 = IFCSPACE('2gRXFgjRn2HPE$YoDLX3FC', $, 'Office 012', #12, #35);
//! ```
//!
//! This module tokenizes and parses those records into [`RawRecord`]s without
//! interpreting entity semantics; the typed decoding into building entities
//! happens in [`crate::schema`]. The parser is deliberately forgiving about
//! whitespace and line breaks (records may span lines) but strict about
//! structural errors, which are reported with line numbers so the repair
//! stage (paper §4.1) can point at offending records.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed argument of a STEP record.
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// Numeric literal (integers and reals are both read as `f64`).
    Num(f64),
    /// `'quoted string'`.
    Str(String),
    /// `.ENUMVALUE.`
    Enum(String),
    /// `#123` entity reference.
    Ref(u64),
    /// `$` (null / unset).
    Null,
    /// `*` (derived attribute placeholder).
    Star,
    /// Parenthesized list, possibly nested.
    List(Vec<Arg>),
}

impl Arg {
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Arg::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Arg::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_ref_id(&self) -> Option<u64> {
        match self {
            Arg::Ref(r) => Some(*r),
            _ => None,
        }
    }

    pub fn as_enum(&self) -> Option<&str> {
        match self {
            Arg::Enum(e) => Some(e),
            _ => None,
        }
    }

    pub fn as_list(&self) -> Option<&[Arg]> {
        match self {
            Arg::List(l) => Some(l),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Arg::Null)
    }
}

/// One `#id = TYPE(args);` record from the DATA section.
#[derive(Debug, Clone, PartialEq)]
pub struct RawRecord {
    pub id: u64,
    /// Upper-cased entity type name, e.g. `IFCSPACE`.
    pub type_name: String,
    pub args: Vec<Arg>,
    /// 1-based line where the record started (for diagnostics).
    pub line: u32,
}

/// A parsed STEP file: header fields we care about plus the record map.
#[derive(Debug, Clone, Default)]
pub struct StepFile {
    /// Value of FILE_SCHEMA, e.g. `IFC2X3`, when present.
    pub schema: Option<String>,
    /// File name from FILE_NAME, when present.
    pub name: Option<String>,
    /// Records keyed by entity id, iteration in id order.
    pub records: BTreeMap<u64, RawRecord>,
}

impl StepFile {
    pub fn record(&self, id: u64) -> Option<&RawRecord> {
        self.records.get(&id)
    }

    /// All records of a given (upper-case) type, in id order.
    pub fn records_of<'a>(&'a self, type_name: &'a str) -> impl Iterator<Item = &'a RawRecord> {
        self.records
            .values()
            .filter(move |r| r.type_name == type_name)
    }
}

/// Errors from STEP tokenizing/parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum StepError {
    /// Input did not start with the ISO-10303-21 magic.
    NotAStepFile,
    /// No DATA section found.
    MissingDataSection,
    /// Malformed record with a human-readable reason.
    Malformed { line: u32, reason: String },
    /// Two records share one entity id.
    DuplicateId { line: u32, id: u64 },
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepError::NotAStepFile => write!(f, "input is not an ISO-10303-21 file"),
            StepError::MissingDataSection => write!(f, "no DATA; section found"),
            StepError::Malformed { line, reason } => {
                write!(f, "malformed record at line {line}: {reason}")
            }
            StepError::DuplicateId { line, id } => {
                write!(f, "duplicate entity id #{id} at line {line}")
            }
        }
    }
}

impl std::error::Error for StepError {}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                self.bump();
            }
            // STEP comments: /* ... */
            if self.peek() == Some(b'/') && self.src.get(self.pos + 1) == Some(&b'*') {
                self.bump();
                self.bump();
                while self.pos < self.src.len() {
                    if self.peek() == Some(b'*') && self.src.get(self.pos + 1) == Some(&b'/') {
                        self.bump();
                        self.bump();
                        break;
                    }
                    self.bump();
                }
            } else {
                break;
            }
        }
    }

    fn err(&self, reason: impl Into<String>) -> StepError {
        StepError::Malformed {
            line: self.line,
            reason: reason.into(),
        }
    }

    /// Read an unsigned integer (entity id digits after `#`).
    fn read_uint(&mut self) -> Result<u64, StepError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected digits"));
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("invalid integer"))
    }

    /// Read a bare identifier (entity type name or section keyword).
    fn read_ident(&mut self) -> Result<String, StepError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_' | b'-')
        ) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        Ok(std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| self.err("non-utf8 identifier"))?
            .to_ascii_uppercase())
    }

    fn expect(&mut self, c: u8) -> Result<(), StepError> {
        self.skip_ws_and_comments();
        if self.peek() == Some(c) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!(
                "expected '{}', found '{}'",
                c as char,
                self.peek().map(|b| b as char).unwrap_or('∅')
            )))
        }
    }

    fn parse_arg(&mut self) -> Result<Arg, StepError> {
        self.skip_ws_and_comments();
        match self.peek() {
            Some(b'$') => {
                self.bump();
                Ok(Arg::Null)
            }
            Some(b'*') => {
                self.bump();
                Ok(Arg::Star)
            }
            Some(b'#') => {
                self.bump();
                Ok(Arg::Ref(self.read_uint()?))
            }
            Some(b'\'') => {
                self.bump();
                // Collect raw bytes, then decode as UTF-8: strings may
                // contain multi-byte characters.
                let mut raw: Vec<u8> = Vec::new();
                loop {
                    match self.bump() {
                        Some(b'\'') => {
                            // '' escapes a quote inside a string.
                            if self.peek() == Some(b'\'') {
                                self.bump();
                                raw.push(b'\'');
                            } else {
                                break;
                            }
                        }
                        Some(c) => raw.push(c),
                        None => return Err(self.err("unterminated string")),
                    }
                }
                let s =
                    String::from_utf8(raw).map_err(|_| self.err("string is not valid UTF-8"))?;
                Ok(Arg::Str(s))
            }
            Some(b'.') => {
                self.bump();
                let name = self.read_ident()?;
                self.expect(b'.')?;
                Ok(Arg::Enum(name))
            }
            Some(b'(') => {
                self.bump();
                let mut items = Vec::new();
                self.skip_ws_and_comments();
                if self.peek() == Some(b')') {
                    self.bump();
                    return Ok(Arg::List(items));
                }
                loop {
                    items.push(self.parse_arg()?);
                    self.skip_ws_and_comments();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b')') => break,
                        _ => return Err(self.err("expected ',' or ')' in list")),
                    }
                }
                Ok(Arg::List(items))
            }
            Some(c) if c == b'-' || c == b'+' || c.is_ascii_digit() => {
                let start = self.pos;
                self.bump();
                while matches!(
                    self.peek(),
                    Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'-' | b'+')
                ) {
                    self.bump();
                }
                let text = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| self.err("non-utf8 number"))?;
                text.parse::<f64>()
                    .map(Arg::Num)
                    .map_err(|_| self.err(format!("invalid number '{text}'")))
            }
            // Typed unset like IFCBOOLEAN(.T.) appearing bare; also bare
            // identifiers used by some writers — treat as enum-ish tokens.
            Some(b'A'..=b'Z' | b'a'..=b'z') => {
                let name = self.read_ident()?;
                // A typed value like IFCLABEL('x') — parse the payload and
                // unwrap it.
                self.skip_ws_and_comments();
                if self.peek() == Some(b'(') {
                    self.bump();
                    let inner = self.parse_arg()?;
                    self.expect(b')')?;
                    Ok(inner)
                } else {
                    Ok(Arg::Enum(name))
                }
            }
            other => Err(self.err(format!(
                "unexpected character '{}' in arguments",
                other.map(|b| b as char).unwrap_or('∅')
            ))),
        }
    }
}

/// Parse a full STEP file into records.
pub fn parse_step(src: &str) -> Result<StepFile, StepError> {
    let mut lx = Lexer::new(src);
    lx.skip_ws_and_comments();

    // Magic line.
    let magic = lx.read_ident()?;
    if magic != "ISO-10303-21" {
        return Err(StepError::NotAStepFile);
    }
    lx.expect(b';')?;

    let mut file = StepFile::default();
    let mut in_data = false;
    let mut saw_data = false;

    loop {
        lx.skip_ws_and_comments();
        match lx.peek() {
            None => break,
            Some(b'#') => {
                if !in_data {
                    return Err(lx.err("record outside DATA section"));
                }
                lx.bump();
                let line = lx.line;
                let id = lx.read_uint()?;
                lx.expect(b'=')?;
                lx.skip_ws_and_comments();
                let type_name = lx.read_ident()?;
                lx.expect(b'(')?;
                let mut args = Vec::new();
                lx.skip_ws_and_comments();
                if lx.peek() == Some(b')') {
                    lx.bump();
                } else {
                    loop {
                        args.push(lx.parse_arg()?);
                        lx.skip_ws_and_comments();
                        match lx.bump() {
                            Some(b',') => continue,
                            Some(b')') => break,
                            _ => return Err(lx.err("expected ',' or ')'")),
                        }
                    }
                }
                lx.expect(b';')?;
                let rec = RawRecord {
                    id,
                    type_name,
                    args,
                    line,
                };
                if file.records.insert(id, rec).is_some() {
                    return Err(StepError::DuplicateId { line, id });
                }
            }
            Some(_) => {
                let kw = lx.read_ident()?;
                match kw.as_str() {
                    "HEADER" => {
                        lx.expect(b';')?;
                        parse_header(&mut lx, &mut file)?;
                    }
                    "DATA" => {
                        lx.expect(b';')?;
                        in_data = true;
                        saw_data = true;
                    }
                    "ENDSEC" => {
                        lx.expect(b';')?;
                        in_data = false;
                    }
                    "END-ISO-10303-21" => {
                        lx.expect(b';')?;
                        break;
                    }
                    other => {
                        return Err(lx.err(format!("unexpected keyword '{other}'")));
                    }
                }
            }
        }
    }

    if !saw_data {
        return Err(StepError::MissingDataSection);
    }
    Ok(file)
}

fn parse_header(lx: &mut Lexer<'_>, file: &mut StepFile) -> Result<(), StepError> {
    loop {
        lx.skip_ws_and_comments();
        let kw = lx.read_ident()?;
        if kw == "ENDSEC" {
            lx.expect(b';')?;
            return Ok(());
        }
        lx.expect(b'(')?;
        let mut args = Vec::new();
        lx.skip_ws_and_comments();
        if lx.peek() == Some(b')') {
            lx.bump();
        } else {
            loop {
                args.push(lx.parse_arg()?);
                lx.skip_ws_and_comments();
                match lx.bump() {
                    Some(b',') => continue,
                    Some(b')') => break,
                    _ => return Err(lx.err("expected ',' or ')' in header")),
                }
            }
        }
        lx.expect(b';')?;
        match kw.as_str() {
            "FILE_SCHEMA" => {
                if let Some(Arg::List(items)) = args.first() {
                    if let Some(Arg::Str(s)) = items.first() {
                        file.schema = Some(s.clone());
                    }
                }
            }
            "FILE_NAME" => {
                if let Some(Arg::Str(s)) = args.first() {
                    file.name = Some(s.clone());
                }
            }
            _ => {} // FILE_DESCRIPTION and friends: ignored.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = "\
ISO-10303-21;
HEADER;
FILE_DESCRIPTION(('Vita test'),'2;1');
FILE_NAME('demo.ifc','2016-06-01',(''),(''),'vita','vita','');
FILE_SCHEMA(('IFC2X3'));
ENDSEC;
DATA;
#1=IFCBUILDING('Office A');
#2=IFCCARTESIANPOINT((0.,0.));
#3=IFCCARTESIANPOINT((10.,0.));
#10=IFCPOLYLINE((#2,#3));
#20=IFCBUILDINGSTOREY('Ground',0.0,#1);
ENDSEC;
END-ISO-10303-21;
";

    #[test]
    fn parses_minimal_file() {
        let f = parse_step(MINIMAL).unwrap();
        assert_eq!(f.schema.as_deref(), Some("IFC2X3"));
        assert_eq!(f.name.as_deref(), Some("demo.ifc"));
        assert_eq!(f.records.len(), 5);
        let b = f.record(1).unwrap();
        assert_eq!(b.type_name, "IFCBUILDING");
        assert_eq!(b.args[0].as_str(), Some("Office A"));
        let pl = f.record(10).unwrap();
        let items = pl.args[0].as_list().unwrap();
        assert_eq!(items[0].as_ref_id(), Some(2));
        assert_eq!(items[1].as_ref_id(), Some(3));
    }

    #[test]
    fn point_coordinates_parse_as_numbers() {
        let f = parse_step(MINIMAL).unwrap();
        let p = f.record(3).unwrap();
        let xy = p.args[0].as_list().unwrap();
        assert_eq!(xy[0].as_num(), Some(10.0));
        assert_eq!(xy[1].as_num(), Some(0.0));
    }

    #[test]
    fn rejects_non_step_input() {
        assert_eq!(
            parse_step("hello world").unwrap_err(),
            StepError::NotAStepFile
        );
    }

    #[test]
    fn rejects_duplicate_ids() {
        let src = "\
ISO-10303-21;
DATA;
#1=IFCBUILDING('A');
#1=IFCBUILDING('B');
ENDSEC;
END-ISO-10303-21;
";
        match parse_step(src).unwrap_err() {
            StepError::DuplicateId { id, .. } => assert_eq!(id, 1),
            e => panic!("wrong error {e:?}"),
        }
    }

    #[test]
    fn requires_data_section() {
        let src = "ISO-10303-21;\nEND-ISO-10303-21;\n";
        assert_eq!(parse_step(src).unwrap_err(), StepError::MissingDataSection);
    }

    #[test]
    fn parses_enums_nulls_stars_and_nested_lists() {
        let src = "\
ISO-10303-21;
DATA;
#5=IFCDOOR('D1',$,*,.DOUBLE.,((1.,2.),(3.,4.)));
ENDSEC;
END-ISO-10303-21;
";
        let f = parse_step(src).unwrap();
        let d = f.record(5).unwrap();
        assert!(d.args[1].is_null());
        assert_eq!(d.args[2], Arg::Star);
        assert_eq!(d.args[3].as_enum(), Some("DOUBLE"));
        let outer = d.args[4].as_list().unwrap();
        let inner0 = outer[0].as_list().unwrap();
        assert_eq!(inner0[1].as_num(), Some(2.0));
    }

    #[test]
    fn utf8_strings_survive() {
        let src = "\
ISO-10303-21;
DATA;
#1=IFCBUILDING('Café Östra 楼');
ENDSEC;
END-ISO-10303-21;
";
        let f = parse_step(src).unwrap();
        assert_eq!(f.record(1).unwrap().args[0].as_str(), Some("Café Östra 楼"));
    }

    #[test]
    fn escaped_quotes_in_strings() {
        let src = "\
ISO-10303-21;
DATA;
#1=IFCBUILDING('O''Brien Hall');
ENDSEC;
END-ISO-10303-21;
";
        let f = parse_step(src).unwrap();
        assert_eq!(f.record(1).unwrap().args[0].as_str(), Some("O'Brien Hall"));
    }

    #[test]
    fn comments_and_multiline_records() {
        let src = "\
ISO-10303-21;
DATA;
/* a building */
#1=IFCBUILDING(
   'Split'
);
ENDSEC;
END-ISO-10303-21;
";
        let f = parse_step(src).unwrap();
        assert_eq!(f.record(1).unwrap().args[0].as_str(), Some("Split"));
    }

    #[test]
    fn typed_wrapped_values_unwrap() {
        let src = "\
ISO-10303-21;
DATA;
#1=IFCBUILDINGSTOREY('G',IFCLENGTHMEASURE(3.2),$);
ENDSEC;
END-ISO-10303-21;
";
        let f = parse_step(src).unwrap();
        assert_eq!(f.record(1).unwrap().args[1].as_num(), Some(3.2));
    }

    #[test]
    fn malformed_record_reports_line() {
        let src = "\
ISO-10303-21;
DATA;
#1=IFCBUILDING('A'
ENDSEC;
END-ISO-10303-21;
";
        match parse_step(src).unwrap_err() {
            StepError::Malformed { line, .. } => assert!(line >= 3),
            e => panic!("wrong error {e:?}"),
        }
    }

    #[test]
    fn records_of_filters_by_type() {
        let f = parse_step(MINIMAL).unwrap();
        assert_eq!(f.records_of("IFCCARTESIANPOINT").count(), 2);
        assert_eq!(f.records_of("IFCBUILDING").count(), 1);
        assert_eq!(f.records_of("IFCWINDOW").count(), 0);
    }

    #[test]
    fn scientific_notation_numbers() {
        let src = "\
ISO-10303-21;
DATA;
#1=IFCCARTESIANPOINT((1.5E2,-2.5e-1));
ENDSEC;
END-ISO-10303-21;
";
        let f = parse_step(src).unwrap();
        let xy = f.record(1).unwrap().args[0].as_list().unwrap();
        assert_eq!(xy[0].as_num(), Some(150.0));
        assert_eq!(xy[1].as_num(), Some(-0.25));
    }
}
