#![forbid(unsafe_code)]
//! # vita-dbi
//!
//! Digital Building Information (DBI) processing for the Vita toolkit.
//!
//! Vita "accepts industry-standard DBI files and uses real-world
//! (multi-floor) buildings ... as the host environment for data generation"
//! (paper §1). This crate is the DBI Processor of the Interface component
//! (Fig. 2): it parses STEP/IFC text into typed building entities, validates
//! and repairs them, and can serialize models back out.
//!
//! Pipeline: [`step::parse_step`] → [`schema::decode`] →
//! [`repair::validate_and_repair`] → hand the [`DbiModel`] to `vita-indoor`.
//!
//! Because real IFC exports are proprietary, [`synth`] generates office,
//! mall and clinic buildings *as STEP files*, so the full parse path is
//! always exercised (see DESIGN.md, substitution table).

pub mod repair;
pub mod schema;
pub mod step;
pub mod synth;
pub mod writer;

pub use repair::{validate_and_repair, Finding, FindingKind, RepairReport};
pub use schema::{
    decode, DbiModel, DecodeError, DecodeIssue, Decoded, DoorDirectionality, DoorRec, EntityId,
    SpaceRec, StairRec, StoreyRec, WallRec,
};
pub use step::{parse_step, Arg, RawRecord, StepError, StepFile};
pub use synth::{clinic, mall, office, SynthParams};
pub use writer::write_step;

/// Convenience: parse STEP text all the way to a repaired model.
///
/// Returns the model, decode issues and repair findings.
pub fn load_dbi(text: &str) -> Result<LoadedDbi, LoadError> {
    let file = step::parse_step(text).map_err(LoadError::Step)?;
    let decoded = schema::decode(&file).map_err(LoadError::Decode)?;
    let mut model = decoded.model;
    let report = repair::validate_and_repair(&mut model);
    Ok(LoadedDbi {
        model,
        decode_issues: decoded.issues,
        repair: report,
    })
}

/// Result of [`load_dbi`].
#[derive(Debug, Clone)]
pub struct LoadedDbi {
    pub model: DbiModel,
    pub decode_issues: Vec<DecodeIssue>,
    pub repair: RepairReport,
}

/// Errors from [`load_dbi`].
#[derive(Debug, Clone)]
pub enum LoadError {
    Step(StepError),
    Decode(DecodeError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Step(e) => write!(f, "STEP parse error: {e}"),
            LoadError::Decode(e) => write!(f, "DBI decode error: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_dbi_end_to_end_on_synthetic_office() {
        let model = synth::office(&SynthParams::with_floors(3));
        let text = writer::write_step(&model);
        let loaded = load_dbi(&text).expect("load");
        assert_eq!(loaded.model.storeys.len(), 3);
        assert!(loaded.decode_issues.is_empty());
        assert_eq!(loaded.repair.unrepaired_count(), 0);
    }

    #[test]
    fn load_dbi_surfaces_parse_errors() {
        assert!(matches!(
            load_dbi("not a step file"),
            Err(LoadError::Step(_))
        ));
    }
}
