//! Clinic archetype: waiting area, reception, consult rooms and wards off a
//! single corridor. Small, irregular-ish footprint — the wards are long
//! rectangles that the partition decomposition stage (paper §4.1) will split
//! into balanced cells.
//!
//! Layout of one storey (scale 1.0, metres):
//!
//! ```text
//!  y=14 ┌──────┬──────┬──────┬────────────┐
//!       │  C1  │  C2  │  C3  │  Ward A    │   consult rooms / long ward
//!  y=8  ├──d───┴──d───┴──d───┴─────d──────┤
//!       │            corridor             │
//!  y=5  ├──────d──────┬─────d──────┬──d───┤
//!       │   Waiting   │ Reception  │ st.  │
//!  y=0  └─────────────┴────────────┴──────┘
//!       x=0           12           24    30
//! ```
//!
//! The door from the corridor into Ward A is exit-only towards the corridor
//! during generation of one-way patient flows (directionality showcase).

use vita_geometry::{Point, Polygon};

use crate::schema::{DbiModel, DoorDirectionality};

use super::{stair_vertices, ModelBuilder, SynthParams};

/// Generate a clinic.
pub fn clinic(params: &SynthParams) -> DbiModel {
    let s = params.scale;
    let width = 30.0 * s;
    let y_low = 5.0 * s;
    let y_corr = 8.0 * s;
    let y_top = 14.0 * s;
    let consult_w = 6.0 * s;

    let mut b = ModelBuilder::new("Vita Community Clinic");
    let mut stair_polys = Vec::new();

    for f in 0..params.floors {
        let elev = f as f64 * params.storey_height;
        let storey = b.storey(&format!("Floor {f}"), elev);

        // Corridor across the middle.
        let corr = Polygon::rect(0.0, y_low, width, y_corr);
        b.space(&format!("Corridor {f}"), "corridor", storey, &corr);

        // Bottom band: waiting room, reception, stair core.
        let waiting = Polygon::rect(0.0, 0.0, 12.0 * s, y_low);
        b.space(&format!("Waiting room {f}"), "waiting", storey, &waiting);
        b.door(
            &format!("waiting-door-{f}"),
            storey,
            Point::new(6.0 * s, y_low),
            1.6 * s,
            DoorDirectionality::Both,
        );

        let reception = Polygon::rect(12.0 * s, 0.0, 24.0 * s, y_low);
        b.space(&format!("Reception {f}"), "reception", storey, &reception);
        b.door(
            &format!("reception-door-{f}"),
            storey,
            Point::new(18.0 * s, y_low),
            1.2 * s,
            DoorDirectionality::Both,
        );

        let stair_poly = Polygon::rect(24.0 * s, 0.0, width, y_low);
        b.space(&format!("Stairwell {f}"), "stair", storey, &stair_poly);
        b.door(
            &format!("stair-door-{f}"),
            storey,
            Point::new(27.0 * s, y_low),
            1.2 * s,
            DoorDirectionality::Both,
        );
        stair_polys.push((elev, stair_poly));

        // Top band: three consult rooms + one long ward (decomposition bait).
        for i in 0..3 {
            let x0 = i as f64 * consult_w;
            let room = Polygon::rect(x0, y_corr, x0 + consult_w, y_top);
            b.space(&format!("Consult {f}.{}", i + 1), "consult", storey, &room);
            b.door(
                &format!("consult-door-{f}-{i}"),
                storey,
                Point::new(x0 + consult_w / 2.0, y_corr),
                0.9 * s,
                DoorDirectionality::Both,
            );
        }
        let ward = Polygon::rect(3.0 * consult_w, y_corr, width, y_top);
        b.space(&format!("Ward A{f}"), "ward", storey, &ward);
        // One-way flow out of the ward (e.g. discharge path).
        b.door(
            &format!("ward-door-{f}"),
            storey,
            Point::new(3.0 * consult_w + (width - 3.0 * consult_w) / 2.0, y_corr),
            1.4 * s,
            DoorDirectionality::ExitOnly,
        );

        // Ground-floor entrance into the waiting room from the street.
        if f == 0 {
            b.door(
                "clinic-entrance",
                storey,
                Point::new(6.0 * s, 0.0),
                1.8 * s,
                DoorDirectionality::Both,
            );
        }

        b.walls_from_spaces(storey);
    }

    for f in 0..params.floors.saturating_sub(1) {
        let (lo, poly) = &stair_polys[f];
        let (hi, _) = &stair_polys[f + 1];
        b.stair(
            &format!("Stairs {f}-{}", f + 1),
            stair_vertices(poly, *lo, *hi),
        );
    }

    b.finish()
}
