//! Office archetype: double-loaded corridor, offices on both sides, a
//! canteen, and a staircase core at the east end of the corridor.
//!
//! Layout of one storey (scale 1.0, metres):
//!
//! ```text
//!  y=16 ┌────┬────┬────┬────┬────┬────────┐
//!       │ O6 │ O7 │ O8 │ O9 │O10 │Canteen │   north rooms (6 m deep)
//!  y=10 ├─d──┴─d──┴─d──┴─d──┴─d──┴───d────┤
//!       │            corridor         │st.│   corridor (4 m) + stair core
//!  y=6  ├─d──┬─d──┬─d──┬─d──┬─d──┬──d─┴───┤
//!       │ O1 │ O2 │ O3 │ O4 │ O5 │Meeting │   south rooms (6 m deep)
//!  y=0  └────┴────┴────┴────┴────┴────────┘
//!       x=0   6   12   18   24   30      42
//! ```
//!
//! The building entrance is a door on the west end of the corridor
//! (a door adjacent to only one space = an entrance; see `vita-indoor`).

use vita_geometry::{Point, Polygon};

use crate::schema::{DbiModel, DoorDirectionality};

use super::{stair_vertices, ModelBuilder, SynthParams};

/// Generate an office building.
pub fn office(params: &SynthParams) -> DbiModel {
    let s = params.scale;
    let room_w = 6.0 * s;
    let room_d = 6.0 * s;
    let corr_d = 4.0 * s;
    let rooms_per_side = 5;
    let big_room_w = 12.0 * s;
    let width = rooms_per_side as f64 * room_w + big_room_w;
    let stair_w = 4.0 * s;

    let mut b = ModelBuilder::new("Vita Office Building");
    let mut stair_polys = Vec::new();

    for f in 0..params.floors {
        let elev = f as f64 * params.storey_height;
        let storey = b.storey(&format!("Floor {f}"), elev);

        let y_corr0 = room_d;
        let y_corr1 = room_d + corr_d;
        let y_top = 2.0 * room_d + corr_d;

        // Corridor, leaving room for the stair core at the east end.
        let corr = Polygon::rect(0.0, y_corr0, width - stair_w, y_corr1);
        b.space(&format!("Corridor {f}"), "corridor", storey, &corr);

        // Stair core.
        let stair_poly = Polygon::rect(width - stair_w, y_corr0, width, y_corr1);
        b.space(&format!("Stair core {f}"), "stair", storey, &stair_poly);
        b.door(
            &format!("stair-door-{f}"),
            storey,
            Point::new(width - stair_w, (y_corr0 + y_corr1) / 2.0),
            1.2 * s,
            DoorDirectionality::Both,
        );
        stair_polys.push((elev, stair_poly));

        // South rooms: offices + meeting room.
        for i in 0..rooms_per_side {
            let x0 = i as f64 * room_w;
            let room = Polygon::rect(x0, 0.0, x0 + room_w, room_d);
            b.space(&format!("Office {f}.{}", i + 1), "office", storey, &room);
            b.door(
                &format!("door-s-{f}-{i}"),
                storey,
                Point::new(x0 + room_w / 2.0, room_d),
                0.9 * s,
                DoorDirectionality::Both,
            );
        }
        let meeting = Polygon::rect(rooms_per_side as f64 * room_w, 0.0, width, room_d);
        b.space(&format!("Meeting room {f}"), "meeting", storey, &meeting);
        b.door(
            &format!("door-meet-{f}"),
            storey,
            Point::new(rooms_per_side as f64 * room_w + big_room_w / 2.0, room_d),
            1.4 * s,
            DoorDirectionality::Both,
        );

        // North rooms: offices + canteen (semantic-extraction marker, §4.1).
        for i in 0..rooms_per_side {
            let x0 = i as f64 * room_w;
            let room = Polygon::rect(x0, y_corr1, x0 + room_w, y_top);
            b.space(
                &format!("Office {f}.{}", rooms_per_side + i + 1),
                "office",
                storey,
                &room,
            );
            b.door(
                &format!("door-n-{f}-{i}"),
                storey,
                Point::new(x0 + room_w / 2.0, y_corr1),
                0.9 * s,
                DoorDirectionality::Both,
            );
        }
        let canteen = Polygon::rect(rooms_per_side as f64 * room_w, y_corr1, width, y_top);
        b.space(&format!("Canteen {f}"), "dining", storey, &canteen);
        b.door(
            &format!("door-canteen-{f}"),
            storey,
            Point::new(rooms_per_side as f64 * room_w + big_room_w / 2.0, y_corr1),
            1.4 * s,
            DoorDirectionality::Both,
        );

        // Building entrance on the ground floor only: west end of corridor.
        if f == 0 {
            b.door(
                "entrance",
                storey,
                Point::new(0.0, (y_corr0 + y_corr1) / 2.0),
                1.8 * s,
                DoorDirectionality::Both,
            );
        }

        b.walls_from_spaces(storey);
    }

    // Staircase flights between consecutive floors, inside the stair core.
    for f in 0..params.floors.saturating_sub(1) {
        let (lo, poly) = &stair_polys[f];
        let (hi, _) = &stair_polys[f + 1];
        let verts = stair_vertices(poly, *lo, *hi);
        b.stair(&format!("Stair {f}-{}", f + 1), verts);
    }

    b.finish()
}
