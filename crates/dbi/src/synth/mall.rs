//! Mall archetype: a large public atrium ringed by shops, with wide
//! entrances — the "crowd-outliers around shops on sale" scenario of paper
//! Fig. 3(b).
//!
//! Layout of one storey (scale 1.0, metres):
//!
//! ```text
//!  y=30 ┌─────┬─────┬─────┬─────┬─────┬────┐
//!       │ S7  │ S8  │ S9  │ S10 │ S11 │st. │   north shops (8 m deep)
//!  y=22 ├──d──┴──d──┴──d──┴──d──┴──d──┴─d──┤
//!       │                                  │
//!       │              atrium              │   public atrium (14 m)
//!       │                                  │
//!  y=8  ├──d──┬──d──┬──d──┬──d──┬──d──┬─d──┤
//!       │ S1  │ S2  │ S3  │ S4  │ S5  │ S6 │   south shops (8 m deep)
//!  y=0  └─────┴─────┴─────┴─────┴─────┴────┘
//!       x=0   10    20    30    40    50  60
//! ```
//!
//! Two wide entrances pierce the west and east atrium walls on the ground
//! floor.

use vita_geometry::{Point, Polygon};

use crate::schema::{DbiModel, DoorDirectionality};

use super::{stair_vertices, ModelBuilder, SynthParams};

/// Generate a shopping mall.
pub fn mall(params: &SynthParams) -> DbiModel {
    let s = params.scale;
    let shop_w = 10.0 * s;
    let shop_d = 8.0 * s;
    let atrium_d = 14.0 * s;
    let shops_per_side = 5;
    let stair_w = 10.0 * s;
    let width = shops_per_side as f64 * shop_w + stair_w;

    let mut b = ModelBuilder::new("Vita Grand Mall");
    let mut stair_polys = Vec::new();

    for f in 0..params.floors {
        let elev = f as f64 * params.storey_height;
        let storey = b.storey(&format!("Level {f}"), elev);

        let y_a0 = shop_d;
        let y_a1 = shop_d + atrium_d;
        let y_top = 2.0 * shop_d + atrium_d;

        // Atrium: the public hot area.
        let atrium = Polygon::rect(0.0, y_a0, width, y_a1);
        b.space(&format!("Atrium {f}"), "public", storey, &atrium);

        // South shops.
        for i in 0..shops_per_side + 1 {
            let x0 = i as f64 * shop_w;
            let x1 = (x0 + shop_w).min(width);
            if x1 - x0 < 1.0 {
                break;
            }
            let shop = Polygon::rect(x0, 0.0, x1, shop_d);
            b.space(&format!("Shop S{f}.{}", i + 1), "shop", storey, &shop);
            b.door(
                &format!("shopdoor-s-{f}-{i}"),
                storey,
                Point::new((x0 + x1) / 2.0, shop_d),
                2.5 * s,
                DoorDirectionality::Both,
            );
        }

        // North shops, leaving the east end for the stair core.
        for i in 0..shops_per_side {
            let x0 = i as f64 * shop_w;
            let shop = Polygon::rect(x0, y_a1, x0 + shop_w, y_top);
            b.space(&format!("Shop N{f}.{}", i + 1), "shop", storey, &shop);
            b.door(
                &format!("shopdoor-n-{f}-{i}"),
                storey,
                Point::new(x0 + shop_w / 2.0, y_a1),
                2.5 * s,
                DoorDirectionality::Both,
            );
        }

        // Stair core in the north-east corner.
        let stair_poly = Polygon::rect(width - stair_w, y_a1, width, y_top);
        b.space(&format!("Escalator hall {f}"), "stair", storey, &stair_poly);
        b.door(
            &format!("stairdoor-{f}"),
            storey,
            Point::new(width - stair_w / 2.0, y_a1),
            3.0 * s,
            DoorDirectionality::Both,
        );
        stair_polys.push((elev, stair_poly));

        // Ground-floor entrances: wide doors on the west and east atrium
        // walls. The east door is enter-only (a metro-side turnstile), which
        // exercises door directionality downstream.
        if f == 0 {
            b.door(
                "main-entrance-west",
                storey,
                Point::new(0.0, (y_a0 + y_a1) / 2.0),
                4.0 * s,
                DoorDirectionality::Both,
            );
            b.door(
                "metro-entrance-east",
                storey,
                Point::new(width, (y_a0 + y_a1) / 2.0),
                3.0 * s,
                DoorDirectionality::EnterOnly,
            );
        }

        b.walls_from_spaces(storey);
    }

    for f in 0..params.floors.saturating_sub(1) {
        let (lo, poly) = &stair_polys[f];
        let (hi, _) = &stair_polys[f + 1];
        b.stair(
            &format!("Escalator {f}-{}", f + 1),
            stair_vertices(poly, *lo, *hi),
        );
    }

    b.finish()
}
