//! Synthetic DBI building generators.
//!
//! The paper demonstrates Vita on real IFC files "from clinics, malls and
//! office buildings" (§5). Those files are proprietary, so this module
//! generates structurally equivalent buildings — multi-floor, corridor/room
//! topology, staircases as disjoint 3-D vertex sets, doors with
//! directionality, shared walls — and *writes them out as STEP files* so the
//! whole DBI pipeline (tokenizer → decoder → repair → environment
//! construction) runs on real textual input exactly as it would on an
//! authored export.
//!
//! Three archetypes, mirroring the demo script:
//!
//! * [`office`] — double-loaded corridor with offices on both sides, a
//!   canteen, and a staircase core at the east end.
//! * [`mall`] — large public atrium ringed by shops, wide entrances.
//! * [`clinic`] — waiting area plus consult rooms and wards off one corridor.

mod clinic;
mod mall;
mod office;

pub use clinic::clinic;
pub use mall::mall;
pub use office::office;

use vita_geometry::{Point, Point3, Polygon};

use crate::schema::{
    DbiModel, DoorDirectionality, DoorRec, EntityId, SpaceRec, StairRec, StoreyRec, WallRec,
};

/// Shared knobs for all synthetic buildings.
#[derive(Debug, Clone)]
pub struct SynthParams {
    /// Number of storeys (≥ 1).
    pub floors: usize,
    /// Floor-to-floor height in metres.
    pub storey_height: f64,
    /// Scale multiplier on the footprint (1.0 = the archetype's default).
    pub scale: f64,
}

impl Default for SynthParams {
    fn default() -> Self {
        SynthParams {
            floors: 2,
            storey_height: 3.2,
            scale: 1.0,
        }
    }
}

impl SynthParams {
    pub fn with_floors(floors: usize) -> Self {
        SynthParams {
            floors: floors.max(1),
            ..Default::default()
        }
    }
}

/// Incremental builder used by the archetype generators.
pub(crate) struct ModelBuilder {
    model: DbiModel,
    next_id: EntityId,
}

impl ModelBuilder {
    pub fn new(name: &str) -> Self {
        ModelBuilder {
            model: DbiModel {
                building_name: name.to_string(),
                ..Default::default()
            },
            next_id: 1,
        }
    }

    pub fn id(&mut self) -> EntityId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    pub fn storey(&mut self, name: &str, elevation: f64) -> EntityId {
        let id = self.id();
        self.model.storeys.push(StoreyRec {
            id,
            name: name.into(),
            elevation,
        });
        id
    }

    pub fn space(
        &mut self,
        name: &str,
        usage: &str,
        storey: EntityId,
        footprint: &Polygon,
    ) -> EntityId {
        let id = self.id();
        self.model.spaces.push(SpaceRec {
            id,
            name: name.into(),
            usage: usage.into(),
            storey,
            footprint: footprint.vertices().to_vec(),
        });
        id
    }

    pub fn door(
        &mut self,
        name: &str,
        storey: EntityId,
        position: Point,
        width: f64,
        directionality: DoorDirectionality,
    ) -> EntityId {
        let id = self.id();
        self.model.doors.push(DoorRec {
            id,
            name: name.into(),
            storey,
            position,
            width,
            directionality,
        });
        id
    }

    pub fn stair(&mut self, name: &str, vertices: Vec<Point3>) -> EntityId {
        let id = self.id();
        self.model.stairs.push(StairRec {
            id,
            name: name.into(),
            vertices,
        });
        id
    }

    /// Emit the deduplicated set of space boundary edges on `storey` as wall
    /// records. Shared walls between adjacent spaces appear exactly once, so
    /// RSSI wall-crossing counts are not doubled.
    pub fn walls_from_spaces(&mut self, storey: EntityId) {
        let mut seen: Vec<(i64, i64, i64, i64)> = Vec::new();
        let mut walls: Vec<(Point, Point)> = Vec::new();
        let spaces: Vec<Vec<Point>> = self
            .model
            .spaces
            .iter()
            .filter(|s| s.storey == storey)
            .map(|s| s.footprint.clone())
            .collect();
        for ring in spaces {
            let n = ring.len();
            for i in 0..n {
                let a = ring[i];
                let b = ring[(i + 1) % n];
                let key = canonical_edge_key(a, b);
                if !seen.contains(&key) {
                    seen.push(key);
                    walls.push((a, b));
                }
            }
        }
        for (i, (a, b)) in walls.into_iter().enumerate() {
            let id = self.id();
            self.model.walls.push(WallRec {
                id,
                name: format!("wall-{i}"),
                storey,
                path: vec![a, b],
            });
        }
    }

    pub fn finish(mut self) -> DbiModel {
        self.model
            .storeys
            .sort_by(|a, b| a.elevation.partial_cmp(&b.elevation).unwrap());
        self.model
    }
}

fn canonical_edge_key(a: Point, b: Point) -> (i64, i64, i64, i64) {
    let q = |v: f64| (v * 1000.0).round() as i64;
    let (pa, pb) = ((q(a.x), q(a.y)), (q(b.x), q(b.y)));
    if pa <= pb {
        (pa.0, pa.1, pb.0, pb.1)
    } else {
        (pb.0, pb.1, pa.0, pa.1)
    }
}

/// Place staircase 3-D vertices for a flight connecting `lower_elev` to
/// `upper_elev` inside `footprint` — the disjoint-point-cloud form the paper
/// says IFC uses (§4.1). Lower vertices hug the south edge of the footprint,
/// upper vertices the north edge.
pub(crate) fn stair_vertices(footprint: &Polygon, lower_elev: f64, upper_elev: f64) -> Vec<Point3> {
    let bb = footprint.bbox();
    let inset_x = bb.width() * 0.25;
    let inset_y = bb.height() * 0.2;
    vec![
        Point3::new(bb.min.x + inset_x, bb.min.y + inset_y, lower_elev),
        Point3::new(bb.max.x - inset_x, bb.min.y + inset_y, lower_elev),
        Point3::new(bb.min.x + inset_x, bb.max.y - inset_y, upper_elev),
        Point3::new(bb.max.x - inset_x, bb.max.y - inset_y, upper_elev),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::validate_and_repair;
    use crate::schema::decode;
    use crate::step::parse_step;
    use crate::writer::write_step;

    fn archetypes() -> Vec<(&'static str, DbiModel)> {
        let p = SynthParams::with_floors(2);
        vec![
            ("office", office(&p)),
            ("mall", mall(&p)),
            ("clinic", clinic(&p)),
        ]
    }

    #[test]
    fn all_archetypes_are_clean_after_repair() {
        for (name, mut m) in archetypes() {
            let rep = validate_and_repair(&mut m);
            assert!(
                rep.unrepaired_count() == 0,
                "{name}: unrepaired findings {:?}",
                rep.findings
            );
        }
    }

    #[test]
    fn all_archetypes_round_trip_through_step() {
        for (name, m) in archetypes() {
            let text = write_step(&m);
            let parsed = parse_step(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            let decoded = decode(&parsed).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(decoded.issues.is_empty(), "{name}: {:?}", decoded.issues);
            assert_eq!(decoded.model.spaces.len(), m.spaces.len(), "{name} spaces");
            assert_eq!(decoded.model.doors.len(), m.doors.len(), "{name} doors");
            assert_eq!(decoded.model.stairs.len(), m.stairs.len(), "{name} stairs");
            assert_eq!(
                decoded.model.storeys.len(),
                m.storeys.len(),
                "{name} storeys"
            );
        }
    }

    #[test]
    fn multi_floor_office_has_stairs_between_consecutive_floors() {
        let m = office(&SynthParams::with_floors(4));
        assert_eq!(m.storeys.len(), 4);
        assert_eq!(m.stairs.len(), 3, "one flight between each floor pair");
        for st in &m.stairs {
            let zs: Vec<f64> = st.vertices.iter().map(|v| v.z).collect();
            let lo = zs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = zs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(hi - lo > 2.0, "flight spans floors: {lo}..{hi}");
        }
    }

    #[test]
    fn single_floor_building_has_no_stairs() {
        let m = office(&SynthParams::with_floors(1));
        assert!(m.stairs.is_empty());
    }

    #[test]
    fn walls_are_deduplicated() {
        let m = office(&SynthParams::with_floors(1));
        let mut keys = Vec::new();
        for w in &m.walls {
            let k = canonical_edge_key(w.path[0], w.path[1]);
            assert!(!keys.contains(&k), "duplicated wall {:?}", w.path);
            keys.push(k);
        }
    }

    #[test]
    fn office_has_semantic_markers() {
        let m = office(&SynthParams::default());
        assert!(m
            .spaces
            .iter()
            .any(|s| s.name.to_lowercase().contains("canteen")));
        assert!(m.spaces.iter().any(|s| s.usage == "corridor"));
    }

    #[test]
    fn every_space_has_positive_area() {
        for (name, m) in archetypes() {
            for s in &m.spaces {
                let poly = Polygon::new(s.footprint.clone())
                    .unwrap_or_else(|e| panic!("{name}/{}: {e}", s.name));
                assert!(poly.area() > 0.5, "{name}/{}: area {}", s.name, poly.area());
            }
        }
    }

    #[test]
    fn every_door_touches_a_space_boundary() {
        for (name, m) in archetypes() {
            for d in &m.doors {
                let on_boundary = m
                    .spaces
                    .iter()
                    .filter(|s| s.storey == d.storey)
                    .filter_map(|s| Polygon::new(s.footprint.clone()).ok())
                    .any(|p| p.boundary_dist(d.position) < 0.05);
                assert!(on_boundary, "{name}/{}: door off boundary", d.name);
            }
        }
    }

    #[test]
    fn scale_parameter_grows_footprint() {
        let small = office(&SynthParams {
            scale: 1.0,
            ..SynthParams::with_floors(1)
        });
        let large = office(&SynthParams {
            scale: 2.0,
            ..SynthParams::with_floors(1)
        });
        let area = |m: &DbiModel| -> f64 {
            m.spaces
                .iter()
                .filter_map(|s| Polygon::new(s.footprint.clone()).ok())
                .map(|p| p.area())
                .sum()
        };
        assert!(area(&large) > 3.0 * area(&small));
    }

    #[test]
    fn mall_has_wide_entrance_doors() {
        let m = mall(&SynthParams::default());
        let widest = m.doors.iter().map(|d| d.width).fold(0.0, f64::max);
        assert!(widest >= 2.0, "mall entrances should be wide, got {widest}");
    }

    #[test]
    fn clinic_has_directional_door() {
        let m = clinic(&SynthParams::default());
        assert!(
            m.doors
                .iter()
                .any(|d| d.directionality != DoorDirectionality::Both),
            "clinic should model a one-way door"
        );
    }
}
