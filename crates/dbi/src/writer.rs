//! Serialize a [`DbiModel`] back to a STEP/IFC-subset file.
//!
//! Used by the synthetic building generators to produce DBI *files* (so the
//! whole pipeline, parser included, is exercised end-to-end) and by users who
//! edit a model programmatically and want to persist it.

use std::fmt::Write as _;

use vita_geometry::{Point, Point3};

use crate::schema::DbiModel;

/// Render the model as an ISO-10303-21 text file.
///
/// Entity ids are freshly assigned; they are internally consistent but will
/// not match the ids of a file the model was decoded from.
pub fn write_step(model: &DbiModel) -> String {
    let mut w = Writer::default();
    w.emit(model)
}

#[derive(Default)]
struct Writer {
    out: String,
    next_id: u64,
}

impl Writer {
    fn id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    fn record(&mut self, id: u64, body: &str) {
        let _ = writeln!(self.out, "#{id}={body};");
    }

    fn point2(&mut self, p: Point) -> u64 {
        let id = self.id();
        self.record(id, &format!("IFCCARTESIANPOINT(({:.6},{:.6}))", p.x, p.y));
        id
    }

    fn point3(&mut self, p: Point3) -> u64 {
        let id = self.id();
        self.record(
            id,
            &format!("IFCCARTESIANPOINT(({:.6},{:.6},{:.6}))", p.x, p.y, p.z),
        );
        id
    }

    fn polyline(&mut self, pts: &[Point]) -> u64 {
        let refs: Vec<u64> = pts.iter().map(|&p| self.point2(p)).collect();
        let id = self.id();
        let list = refs
            .iter()
            .map(|r| format!("#{r}"))
            .collect::<Vec<_>>()
            .join(",");
        self.record(id, &format!("IFCPOLYLINE(({list}))"));
        id
    }

    fn emit(&mut self, model: &DbiModel) -> String {
        self.out.push_str("ISO-10303-21;\nHEADER;\n");
        self.out
            .push_str("FILE_DESCRIPTION(('Vita DBI export'),'2;1');\n");
        let _ = writeln!(
            self.out,
            "FILE_NAME('{}','2016-09-05',('vita'),('vita'),'vita-dbi','vita-dbi','');",
            escape(&model.building_name)
        );
        self.out
            .push_str("FILE_SCHEMA(('IFC2X3'));\nENDSEC;\nDATA;\n");

        let building = self.id();
        let name = escape(&model.building_name);
        self.record(building, &format!("IFCBUILDING('{name}')"));

        // Storey records must keep their model order (sorted by elevation) and
        // we must remap model storey ids to the freshly assigned ones.
        let mut storey_map = std::collections::BTreeMap::new();
        for s in &model.storeys {
            let id = self.id();
            storey_map.insert(s.id, id);
            self.record(
                id,
                &format!(
                    "IFCBUILDINGSTOREY('{}',{:.6},#{building})",
                    escape(&s.name),
                    s.elevation
                ),
            );
        }

        for sp in &model.spaces {
            let pl = self.polyline(&sp.footprint);
            let storey = storey_map.get(&sp.storey).copied().unwrap_or(0);
            let id = self.id();
            self.record(
                id,
                &format!(
                    "IFCSPACE('{}','{}',#{storey},#{pl})",
                    escape(&sp.name),
                    escape(&sp.usage)
                ),
            );
        }

        for d in &model.doors {
            let pt = self.point2(d.position);
            let storey = storey_map.get(&d.storey).copied().unwrap_or(0);
            let id = self.id();
            self.record(
                id,
                &format!(
                    "IFCDOOR('{}',#{storey},#{pt},{:.6},.{}.)",
                    escape(&d.name),
                    d.width,
                    d.directionality.as_step_enum()
                ),
            );
        }

        for st in &model.stairs {
            let refs: Vec<u64> = st.vertices.iter().map(|&v| self.point3(v)).collect();
            let list = refs
                .iter()
                .map(|r| format!("#{r}"))
                .collect::<Vec<_>>()
                .join(",");
            let id = self.id();
            self.record(id, &format!("IFCSTAIR('{}',({list}))", escape(&st.name)));
        }

        for wl in &model.walls {
            let pl = self.polyline(&wl.path);
            let storey = storey_map.get(&wl.storey).copied().unwrap_or(0);
            let id = self.id();
            self.record(
                id,
                &format!(
                    "IFCWALLSTANDARDCASE('{}',#{storey},#{pl})",
                    escape(&wl.name)
                ),
            );
        }

        self.out.push_str("ENDSEC;\nEND-ISO-10303-21;\n");
        std::mem::take(&mut self.out)
    }
}

fn escape(s: &str) -> String {
    s.replace('\'', "''")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{
        decode, DoorDirectionality, DoorRec, SpaceRec, StairRec, StoreyRec, WallRec,
    };
    use crate::step::parse_step;

    fn sample_model() -> DbiModel {
        DbiModel {
            building_name: "O'Brien Clinic".into(),
            storeys: vec![
                StoreyRec {
                    id: 100,
                    name: "Ground".into(),
                    elevation: 0.0,
                },
                StoreyRec {
                    id: 101,
                    name: "First".into(),
                    elevation: 3.5,
                },
            ],
            spaces: vec![SpaceRec {
                id: 200,
                name: "Ward 1".into(),
                usage: "ward".into(),
                storey: 100,
                footprint: vec![
                    Point::new(0.0, 0.0),
                    Point::new(6.0, 0.0),
                    Point::new(6.0, 4.0),
                    Point::new(0.0, 4.0),
                ],
            }],
            doors: vec![DoorRec {
                id: 300,
                name: "D1".into(),
                storey: 100,
                position: Point::new(3.0, 0.0),
                width: 1.1,
                directionality: DoorDirectionality::EnterOnly,
            }],
            stairs: vec![StairRec {
                id: 400,
                name: "S1".into(),
                vertices: vec![Point3::new(1.0, 1.0, 0.0), Point3::new(2.0, 1.0, 3.5)],
            }],
            walls: vec![WallRec {
                id: 500,
                name: "W1".into(),
                storey: 100,
                path: vec![Point::new(0.0, 0.0), Point::new(6.0, 0.0)],
            }],
        }
    }

    #[test]
    fn round_trip_preserves_model_content() {
        let model = sample_model();
        let text = write_step(&model);
        let parsed = parse_step(&text).expect("re-parse");
        let decoded = decode(&parsed).expect("re-decode");
        assert!(decoded.issues.is_empty(), "{:?}", decoded.issues);
        let got = decoded.model;

        assert_eq!(got.building_name, model.building_name);
        assert_eq!(got.storeys.len(), 2);
        assert_eq!(got.storeys[0].name, "Ground");
        assert!((got.storeys[1].elevation - 3.5).abs() < 1e-9);

        assert_eq!(got.spaces.len(), 1);
        assert_eq!(got.spaces[0].name, "Ward 1");
        assert_eq!(got.spaces[0].usage, "ward");
        assert_eq!(got.spaces[0].footprint, model.spaces[0].footprint);
        // Space landed on the right storey (ground, elevation 0).
        let ground_id = got.storeys[0].id;
        assert_eq!(got.spaces[0].storey, ground_id);

        assert_eq!(got.doors.len(), 1);
        assert_eq!(got.doors[0].directionality, DoorDirectionality::EnterOnly);
        assert!((got.doors[0].width - 1.1).abs() < 1e-9);
        assert!(got.doors[0].position.approx_eq(Point::new(3.0, 0.0)));

        assert_eq!(got.stairs.len(), 1);
        assert_eq!(got.stairs[0].vertices.len(), 2);
        assert!((got.stairs[0].vertices[1].z - 3.5).abs() < 1e-9);

        assert_eq!(got.walls.len(), 1);
        assert_eq!(got.walls[0].path, model.walls[0].path);
    }

    #[test]
    fn quotes_escaped_in_output() {
        let text = write_step(&sample_model());
        assert!(text.contains("O''Brien Clinic"));
    }

    #[test]
    fn output_is_valid_step_shape() {
        let text = write_step(&sample_model());
        assert!(text.starts_with("ISO-10303-21;"));
        assert!(text.contains("DATA;"));
        assert!(text.trim_end().ends_with("END-ISO-10303-21;"));
    }
}
