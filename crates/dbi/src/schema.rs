//! Typed DBI entity model decoded from raw STEP records.
//!
//! The subset of IFC entity classes Vita consumes, with the attribute layout
//! this toolkit reads and writes (a pragmatic projection of IFC2X3 — real
//! exports carry many more attributes; the DBI Processor needs only these):
//!
//! | Entity | Attributes |
//! |---|---|
//! | `IFCBUILDING` | `name` |
//! | `IFCBUILDINGSTOREY` | `name, elevation, #building` |
//! | `IFCSPACE` | `name, usage, #storey, #polyline(footprint)` |
//! | `IFCDOOR` | `name, #storey, #point(position), width, .directionality.` |
//! | `IFCSTAIR` | `name, (#point3d, ...)` — disjoint 3-D boundary vertices |
//! | `IFCWALLSTANDARDCASE` | `name, #storey, #polyline(centerline)` |
//! | `IFCPOLYLINE` | `(#point, ...)` |
//! | `IFCCARTESIANPOINT` | `((x, y))` or `((x, y, z))` |
//!
//! As the paper notes (§4.1), IFC "only capture\[s\] indoor topology
//! partially": spaces do not say which doors they own, doors do not say which
//! spaces they join, and staircases are just point clouds. Resolving all of
//! that is the job of `vita-indoor`; this module only gets the geometry and
//! attributes out of the file faithfully.

use std::collections::BTreeMap;
use std::fmt;

use vita_geometry::{Point, Point3};

use crate::step::{Arg, RawRecord, StepFile};

/// Stable identifier of an entity inside one DBI file (its STEP id).
pub type EntityId = u64;

/// Door directionality as configured in the Infrastructure Layer (paper §2):
/// whether the door can be traversed both ways or only one way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DoorDirectionality {
    /// Traversable in both directions.
    #[default]
    Both,
    /// Enter-only (e.g. security gates at a mall entrance).
    EnterOnly,
    /// Exit-only.
    ExitOnly,
}

impl DoorDirectionality {
    pub fn as_step_enum(&self) -> &'static str {
        match self {
            DoorDirectionality::Both => "BOTH",
            DoorDirectionality::EnterOnly => "ENTER",
            DoorDirectionality::ExitOnly => "EXIT",
        }
    }

    pub fn from_step_enum(s: &str) -> Option<Self> {
        match s {
            "BOTH" | "DOUBLE" => Some(DoorDirectionality::Both),
            "ENTER" | "IN" => Some(DoorDirectionality::EnterOnly),
            "EXIT" | "OUT" => Some(DoorDirectionality::ExitOnly),
            _ => None,
        }
    }
}

/// A building storey.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreyRec {
    pub id: EntityId,
    pub name: String,
    /// Elevation of the storey floor slab above datum, metres.
    pub elevation: f64,
}

/// A space (room, hallway, staircase landing...) with its footprint ring.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceRec {
    pub id: EntityId,
    pub name: String,
    /// Free-text usage tag from the authoring tool ("office", "corridor"...).
    /// Semantic extraction (§4.1) also looks at `name`.
    pub usage: String,
    pub storey: EntityId,
    /// Footprint ring; validity is checked by the repair stage, not here.
    pub footprint: Vec<Point>,
}

/// A door, positioned on (or near — see repair) a wall between two spaces.
#[derive(Debug, Clone, PartialEq)]
pub struct DoorRec {
    pub id: EntityId,
    pub name: String,
    pub storey: EntityId,
    pub position: Point,
    /// Clear opening width, metres.
    pub width: f64,
    pub directionality: DoorDirectionality,
}

/// A staircase: IFC models it as disjoint 3-D points (paper §4.1); floor
/// connectivity is resolved later from these vertices.
#[derive(Debug, Clone, PartialEq)]
pub struct StairRec {
    pub id: EntityId,
    pub name: String,
    pub vertices: Vec<Point3>,
}

/// A wall centerline polyline on a storey.
#[derive(Debug, Clone, PartialEq)]
pub struct WallRec {
    pub id: EntityId,
    pub name: String,
    pub storey: EntityId,
    pub path: Vec<Point>,
}

/// The decoded digital-building-information model for one building.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DbiModel {
    pub building_name: String,
    pub storeys: Vec<StoreyRec>,
    pub spaces: Vec<SpaceRec>,
    pub doors: Vec<DoorRec>,
    pub stairs: Vec<StairRec>,
    pub walls: Vec<WallRec>,
}

impl DbiModel {
    pub fn storey(&self, id: EntityId) -> Option<&StoreyRec> {
        self.storeys.iter().find(|s| s.id == id)
    }

    pub fn spaces_on(&self, storey: EntityId) -> impl Iterator<Item = &SpaceRec> {
        self.spaces.iter().filter(move |s| s.storey == storey)
    }

    pub fn doors_on(&self, storey: EntityId) -> impl Iterator<Item = &DoorRec> {
        self.doors.iter().filter(move |d| d.storey == storey)
    }

    pub fn walls_on(&self, storey: EntityId) -> impl Iterator<Item = &WallRec> {
        self.walls.iter().filter(move |w| w.storey == storey)
    }

    /// Total number of decoded entities.
    pub fn entity_count(&self) -> usize {
        1 + self.storeys.len()
            + self.spaces.len()
            + self.doors.len()
            + self.stairs.len()
            + self.walls.len()
    }
}

/// A non-fatal problem found while decoding; the record is skipped and the
/// issue reported, mirroring Vita's GUI-or-geometry error surfacing (§4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeIssue {
    pub record: EntityId,
    pub line: u32,
    pub reason: String,
}

impl fmt::Display for DecodeIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} (line {}): {}", self.record, self.line, self.reason)
    }
}

/// Fatal decoding error.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodeError {
    /// The file contains no IFCBUILDING record.
    NoBuilding,
    /// The file contains no storeys.
    NoStoreys,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::NoBuilding => write!(f, "no IFCBUILDING record"),
            DecodeError::NoStoreys => write!(f, "no IFCBUILDINGSTOREY records"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Result of decoding: the model plus any per-record issues.
#[derive(Debug, Clone)]
pub struct Decoded {
    pub model: DbiModel,
    pub issues: Vec<DecodeIssue>,
}

/// Decode a parsed STEP file into the typed model.
///
/// Unknown entity types are ignored (real IFC files contain hundreds of
/// classes Vita does not use). Records of known types with missing/dangling
/// attributes are skipped and reported as issues.
pub fn decode(file: &StepFile) -> Result<Decoded, DecodeError> {
    let mut issues = Vec::new();

    // Resolve all cartesian points up-front.
    let mut pts2: BTreeMap<EntityId, Point> = BTreeMap::new();
    let mut pts3: BTreeMap<EntityId, Point3> = BTreeMap::new();
    for rec in file.records_of("IFCCARTESIANPOINT") {
        match point_args(rec) {
            Ok((p, z)) => {
                pts2.insert(rec.id, p);
                if let Some(z) = z {
                    pts3.insert(rec.id, Point3::new(p.x, p.y, z));
                }
            }
            Err(reason) => issues.push(DecodeIssue {
                record: rec.id,
                line: rec.line,
                reason,
            }),
        }
    }

    // Polylines resolve to point lists.
    let mut polylines: BTreeMap<EntityId, Vec<Point>> = BTreeMap::new();
    for rec in file.records_of("IFCPOLYLINE") {
        let Some(items) = rec.args.first().and_then(Arg::as_list) else {
            issues.push(issue(rec, "polyline missing point list"));
            continue;
        };
        let mut pts = Vec::with_capacity(items.len());
        let mut ok = true;
        for it in items {
            match it.as_ref_id().and_then(|r| pts2.get(&r).copied()) {
                Some(p) => pts.push(p),
                None => {
                    issues.push(issue(rec, "polyline references missing point"));
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            polylines.insert(rec.id, pts);
        }
    }

    let building_name = match file.records_of("IFCBUILDING").next() {
        Some(rec) => rec
            .args
            .first()
            .and_then(Arg::as_str)
            .unwrap_or("unnamed")
            .to_string(),
        None => return Err(DecodeError::NoBuilding),
    };

    let mut model = DbiModel {
        building_name,
        ..Default::default()
    };

    for rec in file.records_of("IFCBUILDINGSTOREY") {
        let name = rec
            .args
            .first()
            .and_then(Arg::as_str)
            .unwrap_or("storey")
            .to_string();
        let Some(elevation) = rec.args.get(1).and_then(Arg::as_num) else {
            issues.push(issue(rec, "storey missing elevation"));
            continue;
        };
        model.storeys.push(StoreyRec {
            id: rec.id,
            name,
            elevation,
        });
    }
    if model.storeys.is_empty() {
        return Err(DecodeError::NoStoreys);
    }
    model
        .storeys
        .sort_by(|a, b| a.elevation.partial_cmp(&b.elevation).unwrap());
    let storey_ids: Vec<EntityId> = model.storeys.iter().map(|s| s.id).collect();

    for rec in file.records_of("IFCSPACE") {
        let name = rec
            .args
            .first()
            .and_then(Arg::as_str)
            .unwrap_or("space")
            .to_string();
        let usage = rec
            .args
            .get(1)
            .and_then(Arg::as_str)
            .unwrap_or("")
            .to_string();
        let Some(storey) = rec.args.get(2).and_then(Arg::as_ref_id) else {
            issues.push(issue(rec, "space missing storey reference"));
            continue;
        };
        if !storey_ids.contains(&storey) {
            issues.push(issue(rec, "space references unknown storey"));
            continue;
        }
        let Some(footprint) = rec
            .args
            .get(3)
            .and_then(Arg::as_ref_id)
            .and_then(|r| polylines.get(&r).cloned())
        else {
            issues.push(issue(rec, "space missing footprint polyline"));
            continue;
        };
        model.spaces.push(SpaceRec {
            id: rec.id,
            name,
            usage,
            storey,
            footprint,
        });
    }

    for rec in file.records_of("IFCDOOR") {
        let name = rec
            .args
            .first()
            .and_then(Arg::as_str)
            .unwrap_or("door")
            .to_string();
        let Some(storey) = rec.args.get(1).and_then(Arg::as_ref_id) else {
            issues.push(issue(rec, "door missing storey reference"));
            continue;
        };
        if !storey_ids.contains(&storey) {
            issues.push(issue(rec, "door references unknown storey"));
            continue;
        }
        let Some(position) = rec
            .args
            .get(2)
            .and_then(Arg::as_ref_id)
            .and_then(|r| pts2.get(&r).copied())
        else {
            issues.push(issue(rec, "door missing position point"));
            continue;
        };
        let width = rec.args.get(3).and_then(Arg::as_num).unwrap_or(0.9);
        let directionality = rec
            .args
            .get(4)
            .and_then(Arg::as_enum)
            .and_then(DoorDirectionality::from_step_enum)
            .unwrap_or_default();
        model.doors.push(DoorRec {
            id: rec.id,
            name,
            storey,
            position,
            width,
            directionality,
        });
    }

    for rec in file.records_of("IFCSTAIR") {
        let name = rec
            .args
            .first()
            .and_then(Arg::as_str)
            .unwrap_or("stair")
            .to_string();
        let Some(items) = rec.args.get(1).and_then(Arg::as_list) else {
            issues.push(issue(rec, "stair missing vertex list"));
            continue;
        };
        let mut vertices = Vec::with_capacity(items.len());
        let mut ok = true;
        for it in items {
            match it.as_ref_id().and_then(|r| pts3.get(&r).copied()) {
                Some(p) => vertices.push(p),
                None => {
                    issues.push(issue(rec, "stair references missing 3-D point"));
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            model.stairs.push(StairRec {
                id: rec.id,
                name,
                vertices,
            });
        }
    }

    for rec in file
        .records_of("IFCWALLSTANDARDCASE")
        .chain(file.records_of("IFCWALL"))
    {
        let name = rec
            .args
            .first()
            .and_then(Arg::as_str)
            .unwrap_or("wall")
            .to_string();
        let Some(storey) = rec.args.get(1).and_then(Arg::as_ref_id) else {
            issues.push(issue(rec, "wall missing storey reference"));
            continue;
        };
        let Some(path) = rec
            .args
            .get(2)
            .and_then(Arg::as_ref_id)
            .and_then(|r| polylines.get(&r).cloned())
        else {
            issues.push(issue(rec, "wall missing centerline polyline"));
            continue;
        };
        if path.len() < 2 {
            issues.push(issue(rec, "wall centerline has fewer than 2 points"));
            continue;
        }
        model.walls.push(WallRec {
            id: rec.id,
            name,
            storey,
            path,
        });
    }

    Ok(Decoded { model, issues })
}

fn issue(rec: &RawRecord, reason: &str) -> DecodeIssue {
    DecodeIssue {
        record: rec.id,
        line: rec.line,
        reason: reason.to_string(),
    }
}

fn point_args(rec: &RawRecord) -> Result<(Point, Option<f64>), String> {
    let coords = rec
        .args
        .first()
        .and_then(Arg::as_list)
        .ok_or_else(|| "point missing coordinate list".to_string())?;
    let x = coords
        .first()
        .and_then(Arg::as_num)
        .ok_or("point missing x")?;
    let y = coords
        .get(1)
        .and_then(Arg::as_num)
        .ok_or("point missing y")?;
    if !x.is_finite() || !y.is_finite() {
        return Err("point coordinate not finite".into());
    }
    let z = coords.get(2).and_then(Arg::as_num);
    Ok((Point::new(x, y), z))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::parse_step;

    fn demo_src() -> String {
        "\
ISO-10303-21;
DATA;
#1=IFCBUILDING('Office A');
#10=IFCBUILDINGSTOREY('First',3.2,#1);
#11=IFCBUILDINGSTOREY('Ground',0.0,#1);
#20=IFCCARTESIANPOINT((0.,0.));
#21=IFCCARTESIANPOINT((8.,0.));
#22=IFCCARTESIANPOINT((8.,6.));
#23=IFCCARTESIANPOINT((0.,6.));
#24=IFCPOLYLINE((#20,#21,#22,#23));
#30=IFCSPACE('Office 1','office',#11,#24);
#40=IFCCARTESIANPOINT((4.,0.));
#41=IFCDOOR('D1',#11,#40,0.9,.BOTH.);
#50=IFCCARTESIANPOINT((1.,1.,0.));
#51=IFCCARTESIANPOINT((2.,1.,3.2));
#52=IFCSTAIR('S1',(#50,#51));
#60=IFCPOLYLINE((#20,#21));
#61=IFCWALLSTANDARDCASE('W1',#11,#60);
ENDSEC;
END-ISO-10303-21;
"
        .to_string()
    }

    #[test]
    fn decodes_complete_model() {
        let f = parse_step(&demo_src()).unwrap();
        let d = decode(&f).unwrap();
        assert!(d.issues.is_empty(), "unexpected issues: {:?}", d.issues);
        let m = d.model;
        assert_eq!(m.building_name, "Office A");
        assert_eq!(m.storeys.len(), 2);
        // Sorted by elevation.
        assert_eq!(m.storeys[0].name, "Ground");
        assert_eq!(m.storeys[1].name, "First");
        assert_eq!(m.spaces.len(), 1);
        assert_eq!(m.spaces[0].footprint.len(), 4);
        assert_eq!(m.doors.len(), 1);
        assert_eq!(m.doors[0].directionality, DoorDirectionality::Both);
        assert_eq!(m.stairs.len(), 1);
        assert_eq!(m.stairs[0].vertices.len(), 2);
        assert_eq!(m.walls.len(), 1);
        assert_eq!(m.entity_count(), 1 + 2 + 1 + 1 + 1 + 1);
    }

    #[test]
    fn missing_building_is_fatal() {
        let src = "\
ISO-10303-21;
DATA;
#10=IFCBUILDINGSTOREY('G',0.0,$);
ENDSEC;
END-ISO-10303-21;
";
        let f = parse_step(src).unwrap();
        assert_eq!(decode(&f).unwrap_err(), DecodeError::NoBuilding);
    }

    #[test]
    fn missing_storeys_is_fatal() {
        let src = "\
ISO-10303-21;
DATA;
#1=IFCBUILDING('A');
ENDSEC;
END-ISO-10303-21;
";
        let f = parse_step(src).unwrap();
        assert_eq!(decode(&f).unwrap_err(), DecodeError::NoStoreys);
    }

    #[test]
    fn dangling_reference_becomes_issue_not_error() {
        let src = "\
ISO-10303-21;
DATA;
#1=IFCBUILDING('A');
#10=IFCBUILDINGSTOREY('G',0.0,#1);
#30=IFCSPACE('Broken','',#10,#999);
ENDSEC;
END-ISO-10303-21;
";
        let f = parse_step(src).unwrap();
        let d = decode(&f).unwrap();
        assert!(d.model.spaces.is_empty());
        assert_eq!(d.issues.len(), 1);
        assert_eq!(d.issues[0].record, 30);
    }

    #[test]
    fn space_on_unknown_storey_is_issue() {
        let src = "\
ISO-10303-21;
DATA;
#1=IFCBUILDING('A');
#10=IFCBUILDINGSTOREY('G',0.0,#1);
#20=IFCCARTESIANPOINT((0.,0.));
#21=IFCCARTESIANPOINT((1.,0.));
#22=IFCCARTESIANPOINT((1.,1.));
#24=IFCPOLYLINE((#20,#21,#22));
#30=IFCSPACE('S','',#777,#24);
ENDSEC;
END-ISO-10303-21;
";
        let f = parse_step(src).unwrap();
        let d = decode(&f).unwrap();
        assert!(d.model.spaces.is_empty());
        assert!(d.issues[0].reason.contains("unknown storey"));
    }

    #[test]
    fn door_defaults_apply() {
        let src = "\
ISO-10303-21;
DATA;
#1=IFCBUILDING('A');
#10=IFCBUILDINGSTOREY('G',0.0,#1);
#40=IFCCARTESIANPOINT((4.,0.));
#41=IFCDOOR('D1',#10,#40);
ENDSEC;
END-ISO-10303-21;
";
        let f = parse_step(src).unwrap();
        let d = decode(&f).unwrap();
        assert_eq!(d.model.doors.len(), 1);
        assert!((d.model.doors[0].width - 0.9).abs() < 1e-12);
        assert_eq!(d.model.doors[0].directionality, DoorDirectionality::Both);
    }

    #[test]
    fn directionality_round_trip() {
        for d in [
            DoorDirectionality::Both,
            DoorDirectionality::EnterOnly,
            DoorDirectionality::ExitOnly,
        ] {
            assert_eq!(
                DoorDirectionality::from_step_enum(d.as_step_enum()),
                Some(d)
            );
        }
        assert_eq!(DoorDirectionality::from_step_enum("NONSENSE"), None);
        // Legacy IFC-style spellings.
        assert_eq!(
            DoorDirectionality::from_step_enum("DOUBLE"),
            Some(DoorDirectionality::Both)
        );
    }

    #[test]
    fn unknown_entities_ignored() {
        let src = "\
ISO-10303-21;
DATA;
#1=IFCBUILDING('A');
#10=IFCBUILDINGSTOREY('G',0.0,#1);
#99=IFCFLOWTERMINAL('ignored',$,$);
ENDSEC;
END-ISO-10303-21;
";
        let f = parse_step(src).unwrap();
        let d = decode(&f).unwrap();
        assert!(d.issues.is_empty());
        assert_eq!(d.model.storeys.len(), 1);
    }
}
