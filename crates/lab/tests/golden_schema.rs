//! Golden fixture for the trial-record JSONL schema (ISSUE 9 satellite):
//! the checked-in `tests/fixtures/trial_records.golden.jsonl` holds one
//! representative record per probe combination. This test decodes the
//! fixture, re-runs a live spec per combination, and compares *shapes*
//! (key sets + value types via [`vita_lab::schema_signature`]) both ways
//! — a field added, dropped, or retyped on either side fails loudly,
//! while values (timings, seeds, counts) stay free.
//!
//! Regenerate after an intentional schema change with:
//! `VITA_BLESS=1 cargo test -p vita-lab --test golden_schema`

use std::collections::BTreeSet;

use vita_lab::{parse_spec, run_spec, trial_schema_signature, Json, TrialRecord};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/trial_records.golden.jsonl"
);

/// One tiny one-trial spec per probe combination the runner can emit.
fn live_records() -> Vec<TrialRecord> {
    // The "serve" combo carries an axis: binding keys are spec-dependent
    // (they are blanked by the canonical signature), so the fixture
    // should hold at least one record where `bindings` is non-empty.
    let combos = [
        ("bare", "", ""),
        (
            "serve",
            "serve.rps = 300\nserve.duration_ms = 20\n",
            "[axis backend]\nkey = storage.backend\nvalues = single\n",
        ),
        ("persist", "measure.persistence = true\n", ""),
        (
            "full",
            "serve.rps = 300\nserve.duration_ms = 20\nmeasure.persistence = true\n",
            "",
        ),
    ];
    combos
        .iter()
        .map(|(name, extra, axes)| {
            let text = format!(
                "name = {name}\nseed = 5\nrepeats = 1\nrun.duration_s = 3\n\
                 objects.lifespan_min_s = 3\nobjects.lifespan_max_s = 3\n{extra}\n\
                 [scenario walk]\nobjects.count = 2\n{axes}"
            );
            let spec = parse_spec(&text).expect("combo spec parses");
            let report = run_spec(&spec).expect("combo spec runs");
            report.trials.into_iter().next().expect("one trial")
        })
        .collect()
}

#[test]
fn golden_fixture_pins_the_record_schema() {
    let records = live_records();
    let live: BTreeSet<String> = records
        .iter()
        .map(|r| {
            trial_schema_signature(&Json::parse(&r.to_json(true)).expect("live record"))
                .expect("live record shape")
        })
        .collect();
    assert_eq!(live.len(), 4, "probe combinations must differ in shape");

    if std::env::var_os("VITA_BLESS").is_some() {
        let mut out = String::new();
        for r in &records {
            out.push_str(&r.to_json(true));
            out.push('\n');
        }
        std::fs::write(GOLDEN_PATH, out).expect("bless golden fixture");
        #[allow(clippy::print_stderr)] // bless-mode progress note for the operator
        {
            eprintln!("blessed {GOLDEN_PATH}");
        }
        return;
    }

    let golden_text = std::fs::read_to_string(GOLDEN_PATH).expect("read golden fixture");
    let mut golden = BTreeSet::new();
    for (i, line) in golden_text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .enumerate()
    {
        let record = Json::parse(line).unwrap_or_else(|e| panic!("golden line {i}: {e}"));
        // Decode-and-compare: the fixed fields must decode with their
        // documented types, not just any shape.
        for key in ["trial", "repeat", "run", "seed", "workers", "wall_ms"] {
            assert!(
                matches!(record.get(key), Some(Json::Num(_))),
                "golden line {i}: '{key}' must be a number"
            );
        }
        for key in ["id", "scenario", "backend", "exec"] {
            assert!(
                matches!(record.get(key), Some(Json::Str(_))),
                "golden line {i}: '{key}' must be a string"
            );
        }
        assert!(matches!(record.get("bindings"), Some(Json::Obj(_))));
        let rows = record.get("rows").expect("rows object");
        for table in ["trajectories", "rssi", "fixes", "proximity"] {
            assert!(matches!(rows.get(table), Some(Json::Num(_))));
        }
        golden.insert(
            trial_schema_signature(&record).unwrap_or_else(|e| panic!("golden line {i}: {e}")),
        );
    }

    // Shape equality both ways: every live record matches a golden shape,
    // and no golden shape is left unreachable (stale fixture).
    assert_eq!(
        live, golden,
        "trial-record schema drifted from the golden fixture; if intentional, \
         regenerate with VITA_BLESS=1 cargo test -p vita-lab --test golden_schema"
    );
}
