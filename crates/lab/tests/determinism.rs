//! Determinism contracts of the runner (ISSUE 9 satellite): the same
//! spec + seed must produce the same plan and — modulo timing fields —
//! byte-identical JSONL across two full executions; plan expansion order
//! must be stable for arbitrary proptest-generated specs.

use proptest::prelude::*;

use vita_core::Properties;
use vita_lab::{expand, parse_spec, run_spec, Axis, Scenario, Spec, Variant};

/// Build a structurally valid spec from generated shape parameters: a
/// few scenarios, up to two axes (one `values`-style over the storage
/// backend, one explicit-variant style over worker count), optionally a
/// pinned `run.seed`.
fn spec_strategy() -> impl Strategy<Value = Spec> {
    (
        0u64..u64::MAX,
        1u32..=3,
        1usize..=3,
        0usize..=2,
        1usize..=3,
        0u64..1_000,
    )
        .prop_map(|(seed, repeats, n_scen, n_axes, n_var, salt)| {
            let mut defaults = Properties::parse("run.duration_s = 3\n").expect("defaults");
            if salt % 3 == 0 {
                defaults.set("run.seed", salt);
            }
            let scenarios = (0..n_scen)
                .map(|i| Scenario {
                    name: format!("s{i}"),
                    props: Properties::parse(&format!("objects.count = {}\n", 2 * (i + 1)))
                        .expect("scenario props"),
                })
                .collect();
            let backend_pool = ["single", "sharded(2)", "segmented"];
            let mut axes = Vec::new();
            if n_axes >= 1 {
                axes.push(Axis {
                    name: "backend".into(),
                    variants: backend_pool[..n_var]
                        .iter()
                        .map(|b| Variant {
                            name: b.to_string(),
                            bindings: vec![("storage.backend".into(), b.to_string())],
                        })
                        .collect(),
                });
            }
            if n_axes >= 2 {
                axes.push(Axis {
                    name: "workers".into(),
                    variants: (1..=n_var)
                        .map(|w| Variant {
                            name: format!("w{w}"),
                            bindings: vec![("stream.workers".into(), w.to_string())],
                        })
                        .collect(),
                });
            }
            Spec {
                name: "generated".into(),
                seed,
                repeats,
                defaults,
                scenarios,
                axes,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plan_expansion_is_pure_and_ordered(spec in spec_strategy()) {
        let plan = expand(&spec);
        // Pure: same spec ⇒ same plan, field for field.
        prop_assert_eq!(&plan, &expand(&spec));

        // Size: scenarios × Π axis variants × repeats.
        let cells: usize = spec.axes.iter().map(|a| a.variants.len()).product::<usize>().max(1);
        prop_assert_eq!(plan.len(), spec.scenarios.len() * cells * spec.repeats as usize);

        let repeats = spec.repeats as usize;
        let mut seen_ids = std::collections::BTreeSet::new();
        for (i, t) in plan.iter().enumerate() {
            // Order: index is plan position; repeats innermost and
            // consecutive within one cell; scenarios outermost in file
            // order.
            prop_assert_eq!(t.index, i);
            prop_assert_eq!(t.repeat as usize, i % repeats);
            prop_assert_eq!(t.scenario_index, i / (cells * repeats));
            prop_assert!(seen_ids.insert(t.id.clone()), "duplicate id {}", t.id);
            // Bindings follow axis order with one entry per axis.
            prop_assert_eq!(t.bindings.len(), spec.axes.len());
            for (axis, (bound, _)) in spec.axes.iter().zip(&t.bindings) {
                prop_assert_eq!(&axis.name, bound);
            }
        }

        // Seeds depend only on (scenario, repeat) — never on the axis
        // variant — so cross-axis row-parity assertions are meaningful.
        for a in &plan {
            for b in &plan {
                if a.scenario_index == b.scenario_index && a.repeat == b.repeat {
                    prop_assert_eq!(a.seed, b.seed);
                }
            }
        }
    }
}

/// Two full executions of one spec — probes and all — agree byte for
/// byte on the deterministic JSONL form (timing fields stripped), and on
/// the analysis grouping.
#[test]
fn two_executions_are_byte_identical_modulo_timing() {
    let text = "\
name = determinism
seed = 1453
repeats = 2
run.duration_s = 4
objects.lifespan_min_s = 4
objects.lifespan_max_s = 4
serve.rps = 300
serve.duration_ms = 30
measure.persistence = true

[scenario walk]
objects.count = 3

[axis backend]
key = storage.backend
values = single, segmented
";
    let spec = parse_spec(text).expect("spec parses");
    let first = run_spec(&spec).expect("first execution");
    let second = run_spec(&spec).expect("second execution");

    assert_eq!(first.trials_jsonl(false), second.trials_jsonl(false));
    // The timing form differs only in timing fields: same line count, and
    // stripping both back to the deterministic form re-converges (probes
    // attached on identical trials).
    let timed: Vec<_> = first.trials_jsonl(true).lines().map(String::from).collect();
    assert_eq!(timed.len(), first.trials.len());
    for (t, record) in first.trials.iter().zip(&timed) {
        assert!(record.contains("\"wall_ms\":"));
        assert!(record.starts_with(&format!("{{\"trial\":{}", t.index)));
        assert!(record.contains("\"serve\":"));
        assert!(record.contains("\"persist\":"));
    }
    // Regression (audit R1): the lab's only wall-clock reads are the
    // annotated timing probes in run.rs, and their output must never
    // leak into the byte-reproducible projection. If a future change
    // routes a measured duration into a deterministic field, the
    // byte-identity assertion above can still pass (both runs fast
    // enough to round alike) — this key scan cannot.
    for record in first.trials_jsonl(false).lines() {
        for timing_key in [
            "\"wall_ms\":",
            "\"serve\":",
            "\"export_ms\":",
            "\"import_ms\":",
        ] {
            assert!(
                !record.contains(timing_key),
                "timing key {timing_key} leaked into the reproducible projection: {record}"
            );
        }
    }

    // Timing means differ between executions; the grouping and the
    // deterministic aggregates must not.
    for (x, y) in first.by_axis().iter().zip(&second.by_axis()) {
        assert_eq!(x.axis, y.axis);
        assert_eq!(x.variants.len(), y.variants.len());
        for (v, w) in x.variants.iter().zip(&y.variants) {
            assert_eq!(v.variant, w.variant);
            assert_eq!(v.trials, w.trials);
            assert_eq!(v.rows_total, w.rows_total);
        }
    }
}
