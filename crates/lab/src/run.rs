//! Plan execution: each plan cell (one scenario × one axis-variant
//! combination, all its repeats) runs as **one** [`Vita::run_many`] batch
//! on a fresh toolkit, so repeat `k` ingests as `RunId(k)` with the seed
//! [`vita_core::derive_run_seed`] derives for lane `k` — reproducible
//! regardless of which other cells ran before it. `exec = solo` runs the
//! same repeats sequentially through [`Vita::run_streaming_as`] at the
//! same run ids; the derived-seed contract makes the two schedules
//! row-identical, which the `assert.cross_axis_rows` check can pin as
//! part of a spec.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use vita_core::{load_scenario, ConfigLoadError, Properties, Vita};
use vita_devices::{DeploymentModel, DeviceSpec, DeviceType};
use vita_indoor::{BuildParams, FloorId, RunId};
use vita_serve::{run_fixed, WorkloadSpec};
use vita_storage::{AnyRepository, TableCounts};

use crate::plan::{expand, Trial};
use crate::report::{LabReport, PersistProbe, ServeProbe, TrialRecord};
use crate::spec::{Spec, SpecError};

/// Why a spec execution failed.
#[derive(Debug)]
pub enum LabError {
    /// The spec itself was invalid.
    Spec(SpecError),
    /// A trial's properties failed to load as a scenario.
    Config { trial: String, err: ConfigLoadError },
    /// A runner key (`building`, `deploy.model`, `exec`, …) had an
    /// unknown value, or the spec referenced a missing axis.
    Lab { trial: String, msg: String },
    /// The pipeline rejected or failed a run.
    Run { trial: String, msg: String },
    /// Two trials that differ only in the asserted axis produced
    /// different row counts. Boxed: the two [`TableCounts`] would
    /// otherwise dominate the size of every `Result` on the happy path.
    CrossAxisRows(Box<CrossAxisRows>),
}

/// Payload of [`LabError::CrossAxisRows`].
#[derive(Debug)]
pub struct CrossAxisRows {
    pub axis: String,
    pub left: String,
    pub right: String,
    pub left_rows: TableCounts,
    pub right_rows: TableCounts,
}

impl std::fmt::Display for LabError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LabError::Spec(e) => write!(f, "spec: {e}"),
            LabError::Config { trial, err } => write!(f, "trial '{trial}': {err}"),
            LabError::Lab { trial, msg } => write!(f, "trial '{trial}': {msg}"),
            LabError::Run { trial, msg } => write!(f, "trial '{trial}': {msg}"),
            LabError::CrossAxisRows(e) => write!(
                f,
                "axis '{}' changed the data: '{}' produced {:?} but '{}' produced {:?}",
                e.axis, e.left, e.left_rows, e.right, e.right_rows
            ),
        }
    }
}

impl std::error::Error for LabError {}

impl From<SpecError> for LabError {
    fn from(e: SpecError) -> Self {
        LabError::Spec(e)
    }
}

/// The runner keys of one plan cell, decoded from its merged properties.
struct CellConfig {
    building: String,
    floors: usize,
    deploy_type: DeviceType,
    deploy_model: DeploymentModel,
    deploy_devices: usize,
    deploy_floor: u32,
    exec: String,
    measure_persistence: bool,
    serve_rps: f64,
    serve_duration: Duration,
    serve_workers: usize,
}

impl CellConfig {
    fn decode(trial_id: &str, p: &Properties) -> Result<CellConfig, LabError> {
        let lab = |msg: String| LabError::Lab {
            trial: trial_id.to_string(),
            msg,
        };
        let cfg = |err: vita_core::PropsError| LabError::Config {
            trial: trial_id.to_string(),
            err: err.into(),
        };
        let building = p.str_or("building", "office");
        if building != "office" && building != "mall" {
            return Err(lab(format!(
                "unknown building '{building}' (office | mall)"
            )));
        }
        let deploy_type = match p.str_or("deploy.type", "wifi") {
            "wifi" => DeviceType::WiFi,
            "bluetooth" => DeviceType::Bluetooth,
            "rfid" => DeviceType::Rfid,
            other => {
                return Err(lab(format!(
                    "unknown deploy.type '{other}' (wifi | bluetooth | rfid)"
                )))
            }
        };
        let deploy_model = match p.str_or("deploy.model", "coverage") {
            "coverage" => DeploymentModel::Coverage,
            "check-point" => DeploymentModel::CheckPoint,
            other => {
                return Err(lab(format!(
                    "unknown deploy.model '{other}' (coverage | check-point)"
                )))
            }
        };
        let exec = p.str_or("exec", "batched").to_string();
        if exec != "batched" && exec != "solo" {
            return Err(lab(format!("unknown exec '{exec}' (batched | solo)")));
        }
        Ok(CellConfig {
            building: building.to_string(),
            floors: p.usize_or("building.floors", 2).map_err(cfg)?,
            deploy_type,
            deploy_model,
            deploy_devices: p.usize_or("deploy.devices", 10).map_err(cfg)?,
            deploy_floor: p.u64_or("deploy.floor", 0).map_err(cfg)? as u32,
            exec,
            measure_persistence: p.bool_or("measure.persistence", false).map_err(cfg)?,
            serve_rps: p.f64_or("serve.rps", 0.0).map_err(cfg)?,
            serve_duration: Duration::from_millis(p.u64_or("serve.duration_ms", 250).map_err(cfg)?),
            serve_workers: p.usize_or("serve.workers", 2).map_err(cfg)?,
        })
    }
}

/// Execute a spec: expand the plan, run every cell, return the report.
///
/// Toolkits are built per cell from a cached building model (one
/// [`vita_dbi::DbiModel`] per `(building, floors)`), so the plan's row
/// sets are independent of cell order and of one another.
pub fn run_spec(spec: &Spec) -> Result<LabReport, LabError> {
    let plan = expand(spec);
    let repeats = spec.repeats as usize;
    debug_assert_eq!(plan.len() % repeats.max(1), 0);

    // Cross-axis row assertion, resolved up front so a typo fails fast.
    let assert_axis = spec
        .defaults
        .get("assert.cross_axis_rows")
        .map(String::from);
    if let Some(axis) = &assert_axis {
        if !spec.axes.iter().any(|a| &a.name == axis) {
            return Err(LabError::Lab {
                trial: "<spec>".to_string(),
                msg: format!("assert.cross_axis_rows names unknown axis '{axis}'"),
            });
        }
    }

    let mut models: HashMap<(String, usize), vita_dbi::DbiModel> = HashMap::new();
    let mut records: Vec<TrialRecord> = Vec::with_capacity(plan.len());
    for cell in plan.chunks(repeats.max(1)) {
        records.extend(run_cell(cell, &mut models)?);
    }

    if let Some(axis) = assert_axis {
        check_cross_axis_rows(&axis, &records)?;
    }

    Ok(LabReport {
        spec_name: spec.name.clone(),
        seed: spec.seed,
        trials: records,
        axes: LabReport::axes_of(spec),
    })
}

/// Run one plan cell — all repeats of one scenario × variant combination —
/// and emit its trial records in repeat order.
fn run_cell(
    cell: &[Trial],
    models: &mut HashMap<(String, usize), vita_dbi::DbiModel>,
) -> Result<Vec<TrialRecord>, LabError> {
    let first = &cell[0];
    let lab = CellConfig::decode(&first.id, &first.props)?;
    let scenario_cfg = load_scenario(&first.props).map_err(|err| LabError::Config {
        trial: first.id.clone(),
        err,
    })?;

    let model = models
        .entry((lab.building.clone(), lab.floors))
        .or_insert_with(|| {
            let params = vita_dbi::SynthParams::with_floors(lab.floors);
            if lab.building == "mall" {
                vita_dbi::mall(&params)
            } else {
                vita_dbi::office(&params)
            }
        });
    let mut vita = Vita::from_model(model, &BuildParams::default()).map_err(|e| LabError::Run {
        trial: first.id.clone(),
        msg: format!("building model rejected: {e:?}"),
    })?;
    vita.deploy_devices(
        DeviceSpec::default_for(lab.deploy_type),
        FloorId(lab.deploy_floor),
        lab.deploy_model,
        lab.deploy_devices,
    );

    // Execute the repeats: one run_many batch, or sequential solo runs at
    // the same run ids (row-identical by the derived-seed contract).
    let reports = if lab.exec == "batched" {
        let scenarios = vec![scenario_cfg.clone(); cell.len()];
        vita.run_many(&scenarios).map_err(|e| LabError::Run {
            trial: first.id.clone(),
            msg: format!("run_many failed: {e:?}"),
        })?
    } else {
        let mut reports = Vec::with_capacity(cell.len());
        for (r, trial) in cell.iter().enumerate() {
            reports.push(
                vita.run_streaming_as(RunId(r as u32), &scenario_cfg)
                    .map_err(|e| LabError::Run {
                        trial: trial.id.clone(),
                        msg: format!("run_streaming_as failed: {e:?}"),
                    })?,
            );
        }
        reports
    };

    // Optional probes, shared across the cell's repeats.
    let persist = if lab.measure_persistence {
        Some(persistence_probe(&vita, &scenario_cfg, &first.id)?)
    } else {
        None
    };
    let service = (lab.serve_rps > 0.0).then(|| vita.serve());

    let mut records = Vec::with_capacity(cell.len());
    for (trial, report) in cell.iter().zip(&reports) {
        debug_assert_eq!(report.run, RunId(trial.repeat));
        let rows = vita.repository().counts(RunId(trial.repeat).into());
        let serve = service.as_ref().map(|service| {
            let duration = first.props.f64_or("run.duration_s", 600.0).unwrap_or(600.0);
            let workload = WorkloadSpec {
                scopes: vec![RunId(trial.repeat).into()],
                objects: scenario_cfg.mobility.object_count.max(1) as u32,
                floors: lab.floors.max(1) as u32,
                t_max: (duration * 1000.0) as u64,
                seed: trial.seed,
                ..Default::default()
            };
            let step = run_fixed(
                service,
                &workload,
                lab.serve_rps,
                lab.serve_duration,
                lab.serve_workers,
            );
            ServeProbe {
                target_rps: step.target_rps,
                achieved_rps: step.achieved_rps,
                issued: step.issued,
                p50_us: step.p50_us,
                p99_us: step.p99_us,
                p999_us: step.p999_us,
            }
        });
        records.push(TrialRecord {
            index: trial.index,
            id: trial.id.clone(),
            scenario: trial.scenario.clone(),
            bindings: trial.bindings.clone(),
            repeat: trial.repeat,
            run: report.run.0,
            seed: trial.seed,
            backend: scenario_cfg.options.backend.to_string(),
            workers: scenario_cfg.options.workers,
            exec: lab.exec.clone(),
            rows,
            wall_ms: report.elapsed.as_secs_f64() * 1000.0,
            serve,
            persist: persist.clone(),
        });
    }
    Ok(records)
}

/// Export the cell's repository and re-import it into the same backend,
/// timing both and asserting every run's counts survive the round trip.
fn persistence_probe(
    vita: &Vita,
    scenario: &vita_core::ScenarioConfig,
    trial_id: &str,
) -> Result<PersistProbe, LabError> {
    let repo = vita.repository();
    let t0 = Instant::now(); // audit: allow(R1) measured wall-clock only; stripped from the byte-reproducible JSONL projection
    let export = repo.export();
    let export_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let bytes =
        export.trajectories.len() + export.rssi.len() + export.fixes.len() + export.proximity.len();
    let t0 = Instant::now(); // audit: allow(R1) measured wall-clock only; stripped from the byte-reproducible JSONL projection
    let imported =
        AnyRepository::import(&export, scenario.options.backend.clone()).map_err(|e| {
            LabError::Run {
                trial: trial_id.to_string(),
                msg: format!("import failed: {e:?}"),
            }
        })?;
    let import_ms = t0.elapsed().as_secs_f64() * 1000.0;
    for run in repo.run_ids() {
        if imported.counts(run.into()) != repo.counts(run.into()) {
            return Err(LabError::Run {
                trial: trial_id.to_string(),
                msg: format!("persistence round trip diverged at {run:?}"),
            });
        }
    }
    Ok(PersistProbe {
        bytes,
        export_ms,
        import_ms,
    })
}

/// `assert.cross_axis_rows`: trials identical except in the named axis
/// must report identical row counts — the declarative form of the
/// backend/schedule parity assertions the hand-coded experiments carried.
fn check_cross_axis_rows(axis: &str, records: &[TrialRecord]) -> Result<(), LabError> {
    let mut by_rest: HashMap<String, &TrialRecord> = HashMap::new();
    for record in records {
        // Group key: scenario + repeat + every binding except the axis.
        let mut key = format!("{}|r{}", record.scenario, record.repeat);
        for (a, v) in &record.bindings {
            if a != axis {
                key.push_str(&format!("|{a}={v}"));
            }
        }
        match by_rest.get(&key) {
            None => {
                by_rest.insert(key, record);
            }
            Some(reference) => {
                if reference.rows != record.rows {
                    return Err(LabError::CrossAxisRows(Box::new(CrossAxisRows {
                        axis: axis.to_string(),
                        left: reference.id.clone(),
                        right: record.id.clone(),
                        left_rows: reference.rows,
                        right_rows: record.rows,
                    })));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::parse_spec;

    /// A tiny spec that still exercises batching, two backends, and the
    /// cross-axis assertion. Durations are simulated seconds, not wall
    /// clock — the whole spec runs in well under a second.
    const TINY: &str = "\
name = tiny
seed = 11
repeats = 2
run.duration_s = 4
objects.lifespan_min_s = 4
objects.lifespan_max_s = 4
stream.workers = 1
assert.cross_axis_rows = backend

[scenario walk]
objects.count = 3

[axis backend]
key = storage.backend
values = single, segmented
";

    #[test]
    fn tiny_spec_runs_and_reproduces() {
        let spec = parse_spec(TINY).unwrap();
        let a = run_spec(&spec).unwrap();
        assert_eq!(a.trials.len(), 4);
        assert!(a.trials.iter().all(|t| t.rows.trajectories > 0));
        // Repeat 0 and 1 differ (derived seeds); backends agree per repeat.
        assert_ne!(a.trials[0].rows, a.trials[1].rows);
        assert_eq!(a.trials[0].rows, a.trials[2].rows);
        assert_eq!(a.trials[1].rows, a.trials[3].rows);
        // Byte-identical deterministic records across executions.
        let b = run_spec(&spec).unwrap();
        assert_eq!(a.trials_jsonl(false), b.trials_jsonl(false));
    }

    #[test]
    fn solo_matches_batched() {
        let spec = parse_spec(TINY).unwrap();
        let batched = run_spec(&spec).unwrap();
        let solo_spec = parse_spec(&TINY.replace(
            "assert.cross_axis_rows = backend",
            "exec = solo\nassert.cross_axis_rows = backend",
        ))
        .unwrap();
        let solo = run_spec(&solo_spec).unwrap();
        for (b, s) in batched.trials.iter().zip(&solo.trials) {
            assert_eq!(b.rows, s.rows, "{} vs {}", b.id, s.id);
            assert_eq!(b.seed, s.seed);
        }
    }

    #[test]
    fn unknown_runner_values_fail_fast() {
        let spec = parse_spec("building = casino\n[scenario s]\nobjects.count = 1\n").unwrap();
        assert!(matches!(run_spec(&spec), Err(LabError::Lab { .. })));
        let spec =
            parse_spec("assert.cross_axis_rows = nope\n[scenario s]\nobjects.count = 1\n").unwrap();
        assert!(matches!(run_spec(&spec), Err(LabError::Lab { .. })));
    }

    #[test]
    fn cross_axis_violation_is_reported() {
        // objects.count on the axis genuinely changes the data, so the
        // assertion must fire.
        let text = "\
repeats = 1
run.duration_s = 4
objects.lifespan_min_s = 4
objects.lifespan_max_s = 4
stream.workers = 1
assert.cross_axis_rows = size

[scenario s]
positioning.method = proximity

[axis size]
key = objects.count
values = 2, 5
";
        let spec = parse_spec(text).unwrap();
        assert!(matches!(run_spec(&spec), Err(LabError::CrossAxisRows(_))));
    }
}
