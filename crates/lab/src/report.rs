//! Trial records and aggregated analysis.
//!
//! One [`TrialRecord`] per executed trial, serialized as one JSON object
//! per line (JSONL; hand-rolled — the workspace carries no serde). The
//! record has a **deterministic core** (ids, bindings, seed, row counts,
//! persisted byte size) and **timing fields** (wall clock, serve-probe
//! latencies, export/import wall clock); [`TrialRecord::to_json`] with
//! `timing: false` emits only the core, which is the byte-identical form
//! the determinism and golden-fixture suites compare.

use vita_storage::TableCounts;

use crate::spec::Spec;

/// The fixed-rate serve probe's sample for one trial.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeProbe {
    pub target_rps: f64,
    pub achieved_rps: f64,
    pub issued: usize,
    pub p50_us: u64,
    pub p99_us: u64,
    pub p999_us: u64,
}

/// The persistence probe: export → import round trip of the trial's cell.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistProbe {
    /// Serialized size of the whole cell's repository (all repeats share
    /// one repository, so this is a per-cell number repeated on each of
    /// its trials). Deterministic: the wire format encodes deterministic
    /// rows.
    pub bytes: usize,
    pub export_ms: f64,
    pub import_ms: f64,
}

/// Everything recorded about one executed trial.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// Plan index — also the JSONL line number.
    pub index: usize,
    /// `scenario/axis=variant/…/rK`.
    pub id: String,
    pub scenario: String,
    /// `(axis, variant)` in axis order.
    pub bindings: Vec<(String, String)>,
    pub repeat: u32,
    /// The `RunId` this trial ingested under (= repeat).
    pub run: u32,
    /// The trial's derived seed (see [`crate::plan::Trial::seed`]).
    pub seed: u64,
    /// Backend display form (`single`, `sharded(8)`, …).
    pub backend: String,
    /// Stage workers requested (`0` = half the cores).
    pub workers: usize,
    /// `batched` (`run_many`) or `solo` (`run_streaming_as`).
    pub exec: String,
    /// Row counts of this trial's run scope.
    pub rows: TableCounts,
    /// Wall clock: the run for `solo`, the cell's whole schedule for
    /// `batched` (runs overlap; per-run wall clock is not separable).
    pub wall_ms: f64,
    pub serve: Option<ServeProbe>,
    pub persist: Option<PersistProbe>,
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl TrialRecord {
    /// One JSON object, single line, fixed key order. `timing: false`
    /// drops exactly the fields that vary between identical executions
    /// (`wall_ms`, the whole serve probe, persist wall clocks) — the
    /// deterministic core two runs of one spec must agree on byte for
    /// byte.
    pub fn to_json(&self, timing: bool) -> String {
        let mut s = String::with_capacity(256);
        s.push('{');
        s.push_str(&format!("\"trial\":{}", self.index));
        s.push_str(&format!(",\"id\":{}", json_string(&self.id)));
        s.push_str(&format!(",\"scenario\":{}", json_string(&self.scenario)));
        s.push_str(",\"bindings\":{");
        for (i, (axis, variant)) in self.bindings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{}:{}", json_string(axis), json_string(variant)));
        }
        s.push('}');
        s.push_str(&format!(",\"repeat\":{}", self.repeat));
        s.push_str(&format!(",\"run\":{}", self.run));
        s.push_str(&format!(",\"seed\":{}", self.seed));
        s.push_str(&format!(",\"backend\":{}", json_string(&self.backend)));
        s.push_str(&format!(",\"workers\":{}", self.workers));
        s.push_str(&format!(",\"exec\":{}", json_string(&self.exec)));
        s.push_str(&format!(
            ",\"rows\":{{\"trajectories\":{},\"rssi\":{},\"fixes\":{},\"proximity\":{}}}",
            self.rows.trajectories, self.rows.rssi, self.rows.fixes, self.rows.proximity
        ));
        if timing {
            s.push_str(&format!(",\"wall_ms\":{:.3}", self.wall_ms));
        }
        if let Some(p) = &self.persist {
            s.push_str(&format!(",\"persist\":{{\"bytes\":{}", p.bytes));
            if timing {
                s.push_str(&format!(
                    ",\"export_ms\":{:.3},\"import_ms\":{:.3}",
                    p.export_ms, p.import_ms
                ));
            }
            s.push('}');
        }
        if timing {
            if let Some(sv) = &self.serve {
                s.push_str(&format!(
                    ",\"serve\":{{\"target_rps\":{:.1},\"achieved_rps\":{:.1},\"issued\":{},\
                     \"p50_us\":{},\"p99_us\":{},\"p999_us\":{}}}",
                    sv.target_rps, sv.achieved_rps, sv.issued, sv.p50_us, sv.p99_us, sv.p999_us
                ));
            }
        }
        s.push('}');
        s
    }
}

/// Aggregate over one variant of one axis.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantSummary {
    pub variant: String,
    pub trials: usize,
    /// Sum of all table rows across the variant's trials.
    pub rows_total: usize,
    pub mean_wall_ms: f64,
    /// Mean serve-probe p99, when any trial carried the probe.
    pub mean_p99_us: Option<f64>,
}

/// Aggregates for every variant of one axis (marginalized over the other
/// axes, scenarios, and repeats).
#[derive(Debug, Clone, PartialEq)]
pub struct AxisSummary {
    pub axis: String,
    pub variants: Vec<VariantSummary>,
}

/// Everything one spec execution produced.
#[derive(Debug, Clone, PartialEq)]
pub struct LabReport {
    pub spec_name: String,
    pub seed: u64,
    pub trials: Vec<TrialRecord>,
    /// Axis order of the spec (drives the analysis grouping).
    pub axes: Vec<String>,
}

impl LabReport {
    /// One line per trial, plan order. `timing: false` emits the
    /// deterministic core only.
    pub fn trials_jsonl(&self, timing: bool) -> String {
        let mut out = String::new();
        for t in &self.trials {
            out.push_str(&t.to_json(timing));
            out.push('\n');
        }
        out
    }

    /// Aggregates grouped by each axis, in spec axis order. Variants keep
    /// their axis order of first appearance in the plan.
    pub fn by_axis(&self) -> Vec<AxisSummary> {
        self.axes
            .iter()
            .map(|axis| {
                let mut variants: Vec<VariantSummary> = Vec::new();
                for t in &self.trials {
                    let Some((_, variant)) = t.bindings.iter().find(|(a, _)| a == axis) else {
                        continue;
                    };
                    let entry = match variants.iter_mut().find(|v| &v.variant == variant) {
                        Some(e) => e,
                        None => {
                            variants.push(VariantSummary {
                                variant: variant.clone(),
                                trials: 0,
                                rows_total: 0,
                                mean_wall_ms: 0.0,
                                mean_p99_us: None,
                            });
                            variants.last_mut().expect("just pushed")
                        }
                    };
                    entry.trials += 1;
                    entry.rows_total += t.rows.total();
                    // Accumulate sums; normalized to means below.
                    entry.mean_wall_ms += t.wall_ms;
                    if let Some(sv) = &t.serve {
                        *entry.mean_p99_us.get_or_insert(0.0) += sv.p99_us as f64;
                    }
                }
                for v in &mut variants {
                    if v.trials > 0 {
                        v.mean_wall_ms /= v.trials as f64;
                        if let Some(p) = &mut v.mean_p99_us {
                            *p /= v.trials as f64;
                        }
                    }
                }
                AxisSummary {
                    axis: axis.clone(),
                    variants,
                }
            })
            .collect()
    }

    /// The analysis tables as markdown — one table per axis, plus a
    /// per-scenario row-count table when the spec has no axes.
    pub fn analysis_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "### Lab `{}` — {} trials (seed {})\n\n",
            self.spec_name,
            self.trials.len(),
            self.seed
        ));
        for summary in self.by_axis() {
            out.push_str(&format!("#### by {}\n\n", summary.axis));
            out.push_str("| variant | trials | rows total | mean wall ms | mean serve p99 µs |\n");
            out.push_str("|---|---|---|---|---|\n");
            for v in &summary.variants {
                let p99 = v.mean_p99_us.map_or("—".to_string(), |p| format!("{p:.0}"));
                out.push_str(&format!(
                    "| {} | {} | {} | {:.1} | {} |\n",
                    v.variant, v.trials, v.rows_total, v.mean_wall_ms, p99
                ));
            }
            out.push('\n');
        }
        if self.axes.is_empty() {
            out.push_str("| trial | rows | wall ms |\n|---|---|---|\n");
            for t in &self.trials {
                out.push_str(&format!(
                    "| {} | {} | {:.1} |\n",
                    t.id,
                    t.rows.total(),
                    t.wall_ms
                ));
            }
            out.push('\n');
        }
        out
    }

    /// The aggregates as JSONL: one record per `(axis, variant)`.
    pub fn analysis_jsonl(&self) -> String {
        let mut out = String::new();
        for summary in self.by_axis() {
            for v in &summary.variants {
                let p99 = v
                    .mean_p99_us
                    .map_or("null".to_string(), |p| format!("{p:.1}"));
                out.push_str(&format!(
                    "{{\"spec\":{},\"axis\":{},\"variant\":{},\"trials\":{},\
                     \"rows_total\":{},\"mean_wall_ms\":{:.3},\"mean_serve_p99_us\":{}}}\n",
                    json_string(&self.spec_name),
                    json_string(&summary.axis),
                    json_string(&v.variant),
                    v.trials,
                    v.rows_total,
                    v.mean_wall_ms,
                    p99
                ));
            }
        }
        out
    }

    /// Convenience: the axis names of `spec`, for constructing a report.
    pub fn axes_of(spec: &Spec) -> Vec<String> {
        spec.axes.iter().map(|a| a.name.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(i: usize, backend: &str, rows: usize) -> TrialRecord {
        TrialRecord {
            index: i,
            id: format!("s/backend={backend}/r0"),
            scenario: "s".into(),
            bindings: vec![("backend".into(), backend.into())],
            repeat: 0,
            run: 0,
            seed: 42,
            backend: backend.into(),
            workers: 1,
            exec: "batched".into(),
            rows: TableCounts {
                trajectories: rows,
                rssi: 2 * rows,
                fixes: rows / 2,
                proximity: 0,
            },
            wall_ms: 12.5,
            serve: None,
            persist: Some(PersistProbe {
                bytes: 1000,
                export_ms: 1.0,
                import_ms: 2.0,
            }),
        }
    }

    #[test]
    fn json_fixed_key_order_and_timing_split() {
        let r = record(0, "single", 10);
        let full = r.to_json(true);
        assert!(full.contains("\"wall_ms\":12.500"));
        assert!(full.contains("\"export_ms\":1.000"));
        let det = r.to_json(false);
        assert!(!det.contains("wall_ms"));
        assert!(!det.contains("export_ms"));
        assert!(det.contains("\"persist\":{\"bytes\":1000}"));
        assert!(det.starts_with("{\"trial\":0,\"id\":\"s/backend=single/r0\""));
        // Deterministic form is itself stable.
        assert_eq!(det, record(0, "single", 10).to_json(false));
    }

    #[test]
    fn by_axis_groups_and_averages() {
        let report = LabReport {
            spec_name: "t".into(),
            seed: 1,
            trials: vec![
                record(0, "single", 10),
                record(1, "single", 20),
                record(2, "segmented", 10),
            ],
            axes: vec!["backend".into()],
        };
        let by = report.by_axis();
        assert_eq!(by.len(), 1);
        assert_eq!(by[0].variants.len(), 2);
        let single = &by[0].variants[0];
        assert_eq!(single.variant, "single");
        assert_eq!(single.trials, 2);
        assert_eq!(single.rows_total, (10 + 20 + 5) + (20 + 40 + 10));
        assert!((single.mean_wall_ms - 12.5).abs() < 1e-9);
        let md = report.analysis_markdown();
        assert!(md.contains("#### by backend"));
        assert!(md.contains("| single | 2 |"));
        let jsonl = report.analysis_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"variant\":\"segmented\""));
    }
}
