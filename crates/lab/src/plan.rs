//! Plan expansion: `scenarios × axes × repeats`, deterministically.
//!
//! The order is part of the contract (it fixes run-id assignment and the
//! JSONL record order): scenarios in file order are outermost, then the
//! axes in file order (earlier axes vary slower), then repeats innermost.
//! Repeats of one cell are consecutive — the runner executes each cell as
//! one [`vita_core::Vita::run_many`] batch whose lane `k` is repeat `k`.

use vita_core::{derive_run_seed, Properties};
use vita_indoor::RunId;

use crate::spec::{keys_of, Spec};

/// One planned trial: everything needed to execute and label it.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial {
    /// Position in the plan (and in the emitted JSONL).
    pub index: usize,
    /// `scenario/axis=variant/…/rK` — unique within the plan.
    pub id: String,
    /// The scenario this trial instantiates.
    pub scenario: String,
    /// Index of the scenario in the spec (seed derivation input).
    pub scenario_index: usize,
    /// `(axis, variant)` pairs in axis order.
    pub bindings: Vec<(String, String)>,
    /// Repeat number within the cell — also the trial's [`RunId`].
    pub repeat: u32,
    /// The trial's effective seed: [`derive_run_seed`] of the cell's base
    /// seed at `RunId(repeat)`, exactly what the pipeline derives for the
    /// matching `run_many` lane.
    pub seed: u64,
    /// Fully merged properties: spec defaults ← scenario body ← axis
    /// bindings, with `run.seed` materialized.
    pub props: Properties,
}

/// SplitMix64 — the same mixer [`derive_run_seed`] uses, for deriving
/// per-scenario base seeds from the spec seed.
fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Expand a spec into its trial plan. Pure: same spec ⇒ same plan,
/// byte for byte.
pub fn expand(spec: &Spec) -> Vec<Trial> {
    let mut trials = Vec::new();
    for (si, scenario) in spec.scenarios.iter().enumerate() {
        // Mixed-radix counter over the axes: earlier axes vary slower.
        let radices: Vec<usize> = spec.axes.iter().map(|a| a.variants.len()).collect();
        let cells: usize = radices.iter().product::<usize>().max(1);
        for cell in 0..cells {
            let mut rem = cell;
            let mut picks = vec![0usize; radices.len()];
            for (i, r) in radices.iter().enumerate().rev() {
                picks[i] = rem % r;
                rem /= r;
            }

            // Merge: defaults ← scenario ← axis bindings (axis order,
            // later bindings win).
            let mut props = spec.defaults.clone();
            for key in keys_of(&scenario.props) {
                props.set(&key, scenario.props.str_or(&key, ""));
            }
            let mut bindings = Vec::with_capacity(spec.axes.len());
            for (axis, &pick) in spec.axes.iter().zip(&picks) {
                let variant = &axis.variants[pick];
                for (k, v) in &variant.bindings {
                    props.set(k, v);
                }
                bindings.push((axis.name.clone(), variant.name.clone()));
            }

            // The cell's base seed: a spec-level `run.seed` (head,
            // scenario, or axis binding) pins it — so a "noise seed" axis
            // can be an axis like any other; otherwise it is derived from
            // the spec seed and the scenario index. Identical across the
            // cells of one scenario, so axes that should not perturb the
            // data (backend, workers, exec) provably don't.
            let base = match props.get("run.seed").map(|s| s.parse::<u64>()) {
                Some(Ok(s)) => s,
                // Unparseable pin: leave the text in place so the config
                // loader reports the BadValue with its key at run time.
                Some(Err(_)) => 0,
                None => {
                    let b = splitmix(spec.seed ^ splitmix(si as u64));
                    props.set("run.seed", b);
                    b
                }
            };

            let mut id = scenario.name.clone();
            for (axis, variant) in &bindings {
                id.push('/');
                id.push_str(axis);
                id.push('=');
                id.push_str(variant);
            }
            for repeat in 0..spec.repeats {
                trials.push(Trial {
                    index: trials.len(),
                    id: format!("{id}/r{repeat}"),
                    scenario: scenario.name.clone(),
                    scenario_index: si,
                    bindings: bindings.clone(),
                    repeat,
                    seed: derive_run_seed(base, RunId(repeat)),
                    props: props.clone(),
                });
            }
        }
    }
    trials
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::parse_spec;

    const SPEC: &str = "\
seed = 3
repeats = 2
run.duration_s = 5

[scenario a]
objects.count = 4

[scenario b]
objects.count = 8

[axis backend]
key = storage.backend
values = single, segmented

[axis workers]
variant w1 = stream.workers=1
variant w2 = stream.workers=2
";

    #[test]
    fn expansion_is_scenarios_axes_repeats() {
        let spec = parse_spec(SPEC).unwrap();
        let plan = expand(&spec);
        assert_eq!(plan.len(), 2 * 2 * 2 * 2);
        assert_eq!(plan[0].id, "a/backend=single/workers=w1/r0");
        assert_eq!(plan[1].id, "a/backend=single/workers=w1/r1");
        // Innermost: repeats; then the last axis; first axis slowest;
        // scenarios outermost.
        assert_eq!(plan[2].id, "a/backend=single/workers=w2/r0");
        assert_eq!(plan[4].id, "a/backend=segmented/workers=w1/r0");
        assert_eq!(plan[8].id, "b/backend=single/workers=w1/r0");
        for (i, t) in plan.iter().enumerate() {
            assert_eq!(t.index, i);
        }
    }

    #[test]
    fn bindings_overlay_in_precedence_order() {
        let spec = parse_spec(
            "x = head\ny = head\n[scenario s]\ny = scen\nz = scen\n[axis a]\nvariant v = z=axis\n",
        )
        .unwrap();
        let plan = expand(&spec);
        let p = &plan[0].props;
        assert_eq!(p.str_or("x", ""), "head");
        assert_eq!(p.str_or("y", ""), "scen");
        assert_eq!(p.str_or("z", ""), "axis");
    }

    #[test]
    fn seeds_constant_across_axes_distinct_across_scenarios() {
        let spec = parse_spec(SPEC).unwrap();
        let plan = expand(&spec);
        // Same scenario + repeat, different backend/workers: same seed.
        assert_eq!(plan[0].seed, plan[2].seed);
        assert_eq!(plan[0].seed, plan[4].seed);
        // Repeats differ (derive_run_seed), scenarios differ (splitmix).
        assert_ne!(plan[0].seed, plan[1].seed);
        assert_ne!(plan[0].seed, plan[8].seed);
        // Repeat 0 carries the base seed itself (derive_run_seed identity).
        assert_eq!(
            plan[0].props.get("run.seed").unwrap(),
            plan[0].seed.to_string().as_str()
        );
    }

    #[test]
    fn pinned_run_seed_wins() {
        let spec =
            parse_spec("seed = 9\nrun.seed = 77\n[scenario s]\nobjects.count = 1\n").unwrap();
        let plan = expand(&spec);
        assert_eq!(plan[0].seed, 77);
    }

    #[test]
    fn expansion_is_deterministic() {
        let spec = parse_spec(SPEC).unwrap();
        assert_eq!(expand(&spec), expand(&spec));
    }
}
