//! A minimal JSON reader (the workspace carries no serde): just enough to
//! decode trial records back for validation — the golden-schema test and
//! the `lab` subcommand's `--schema` check parse every emitted line and
//! compare *shapes* (key sets and value types), so schema drift fails
//! loudly while timing values stay free to vary.

/// A parsed JSON value. Object keys keep document order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Where and why a document failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the document.
    pub at: usize,
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse one complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                at: pos,
                msg: "trailing characters after document".into(),
            });
        }
        Ok(value)
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value's type, as the schema signature names it.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "num",
            Json::Str(_) => "str",
            Json::Arr(_) => "arr",
            Json::Obj(_) => "obj",
        }
    }
}

/// The canonical *shape* of a value: scalars collapse to their type name,
/// arrays to the shape of their elements, objects to sorted
/// `key:shape` members. Two records with the same keys and value types —
/// whatever the values — share a signature; a dropped, added, or retyped
/// field changes it.
pub fn schema_signature(v: &Json) -> String {
    match v {
        Json::Arr(items) => {
            let mut shapes: Vec<String> = items.iter().map(schema_signature).collect();
            shapes.sort();
            shapes.dedup();
            format!("[{}]", shapes.join("|"))
        }
        Json::Obj(members) => {
            let mut parts: Vec<String> = members
                .iter()
                .map(|(k, v)| format!("{k}:{}", schema_signature(v)))
                .collect();
            parts.sort();
            format!("{{{}}}", parts.join(","))
        }
        scalar => scalar.type_name().to_string(),
    }
}

/// [`schema_signature`] of a trial record with its `bindings` object
/// canonicalized to `{}`. Binding keys are the spec's axis names — their
/// shape is spec-dependent by design — so this checks instead that every
/// binding value is a string, then compares the rest of the record's
/// shape exactly. Errors on a record with no string-valued `bindings`
/// object at the top level.
pub fn trial_schema_signature(record: &Json) -> Result<String, String> {
    let Json::Obj(members) = record else {
        return Err(format!(
            "trial record must be an object, got {}",
            record.type_name()
        ));
    };
    let mut canonical = members.clone();
    let Some(bindings) = canonical.iter_mut().find(|(k, _)| k == "bindings") else {
        return Err("trial record has no 'bindings' member".into());
    };
    let Json::Obj(pairs) = &bindings.1 else {
        return Err(format!(
            "'bindings' must be an object, got {}",
            bindings.1.type_name()
        ));
    };
    if let Some((axis, v)) = pairs.iter().find(|(_, v)| !matches!(v, Json::Str(_))) {
        return Err(format!(
            "binding '{axis}' must be a string, got {}",
            v.type_name()
        ));
    }
    bindings.1 = Json::Obj(Vec::new());
    Ok(schema_signature(&Json::Obj(canonical)))
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError {
            at: *pos,
            msg: format!("expected '{}'", c as char),
        })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError {
            at: *pos,
            msg: "unexpected end of document".into(),
        }),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => {
                        return Err(JsonError {
                            at: *pos,
                            msg: "expected ',' or '}'".into(),
                        })
                    }
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => {
                        return Err(JsonError {
                            at: *pos,
                            msg: "expected ',' or ']'".into(),
                        })
                    }
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(JsonError {
            at: *pos,
            msg: format!("expected '{lit}'"),
        })
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| JsonError {
        at: start,
        msg: "invalid utf-8 in number".into(),
    })?;
    text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
        at: start,
        msg: format!("invalid number '{text}'"),
    })
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => {
                return Err(JsonError {
                    at: *pos,
                    msg: "unterminated string".into(),
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes.get(*pos + 1..*pos + 5).ok_or(JsonError {
                            at: *pos,
                            msg: "truncated \\u escape".into(),
                        })?;
                        let code = std::str::from_utf8(hex)
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(JsonError {
                                at: *pos,
                                msg: "bad \\u escape".into(),
                            })?;
                        // Surrogates are not paired here — trial records
                        // never emit them; map to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => {
                        return Err(JsonError {
                            at: *pos,
                            msg: "unknown escape".into(),
                        })
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| JsonError {
                    at: *pos,
                    msg: "invalid utf-8 in string".into(),
                })?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_trial_record_shapes() {
        let doc = r#"{"trial":0,"id":"a/backend=single/r0","bindings":{"backend":"single"},"rows":{"trajectories":10,"rssi":20,"fixes":5,"proximity":0},"wall_ms":1.25,"flags":[true,false,null]}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("trial"), Some(&Json::Num(0.0)));
        assert_eq!(
            v.get("id"),
            Some(&Json::Str("a/backend=single/r0".to_string()))
        );
        assert_eq!(
            v.get("rows").and_then(|r| r.get("rssi")),
            Some(&Json::Num(20.0))
        );
        assert_eq!(v.get("bindings").unwrap().type_name(), "obj");
    }

    #[test]
    fn signature_ignores_values_but_not_shape() {
        let a = Json::parse(r#"{"x":1,"y":"s","z":{"k":2}}"#).unwrap();
        let b = Json::parse(r#"{"z":{"k":99},"y":"other","x":-7.5}"#).unwrap();
        assert_eq!(schema_signature(&a), schema_signature(&b));
        let missing = Json::parse(r#"{"x":1,"y":"s"}"#).unwrap();
        assert_ne!(schema_signature(&a), schema_signature(&missing));
        let retyped = Json::parse(r#"{"x":1,"y":2,"z":{"k":2}}"#).unwrap();
        assert_ne!(schema_signature(&a), schema_signature(&retyped));
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v, Json::Str("a\"b\\c\ndA".to_string()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{}extra").is_err());
        assert!(Json::parse("{'single':1}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nope").is_err());
    }
}
