//! The scenario-matrix spec: a sectioned properties dialect.
//!
//! Head lines (before the first section) hold the runner keys `name`,
//! `seed`, `repeats` plus default properties merged under every scenario.
//! `[scenario NAME]` sections are plain properties bodies;
//! `[axis NAME]` sections enumerate variants either as
//! `values = a, b, c` over one property key (`key = PROP`, default the
//! axis name) or as explicit ordered `variant NAME = k=v k=v …` lines.
//! Sections and variants keep **file order** — the plan expansion order
//! (and therefore run-id assignment) is part of the spec's meaning.

use vita_core::{Properties, PropsError};

/// One parsed scenario-matrix spec.
#[derive(Debug, Clone, PartialEq)]
pub struct Spec {
    /// Experiment name (head `name`, default `"lab"`); labels reports.
    pub name: String,
    /// Base seed (head `seed`, default 0): per-scenario base seeds are
    /// derived from it unless a trial's properties pin `run.seed`.
    pub seed: u64,
    /// Trials per plan cell (head `repeats`, default 1, min 1). Each
    /// repeat runs as its own `RunId`, so repeat `k` reproduces the rows
    /// of `run_many` lane `k`.
    pub repeats: u32,
    /// Head properties minus the reserved runner keys — merged (lowest
    /// precedence) into every trial.
    pub defaults: Properties,
    /// Scenarios in file order.
    pub scenarios: Vec<Scenario>,
    /// Variant axes in file order.
    pub axes: Vec<Axis>,
}

/// A named scenario: one properties body.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    pub name: String,
    pub props: Properties,
}

/// A variant axis: an ordered set of named property-binding bundles.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    pub name: String,
    pub variants: Vec<Variant>,
}

/// One axis variant: the bindings it overlays on a trial's properties.
#[derive(Debug, Clone, PartialEq)]
pub struct Variant {
    pub name: String,
    /// `(key, value)` pairs, applied in order (later wins).
    pub bindings: Vec<(String, String)>,
}

/// Why a spec failed to parse or validate.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// A properties body failed to parse; `section` names the spot.
    Props { section: String, err: PropsError },
    /// A structurally invalid line (bad section header, bad variant
    /// binding, …).
    Malformed { line: u32, msg: String },
    /// Two sections (or two variants of one axis) share a name.
    DuplicateName { kind: &'static str, name: String },
    /// An axis with no variants, or a spec with no scenarios.
    Empty { what: String },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Props { section, err } => write!(f, "in {section}: {err}"),
            SpecError::Malformed { line, msg } => write!(f, "line {line}: {msg}"),
            SpecError::DuplicateName { kind, name } => {
                write!(f, "duplicate {kind} name '{name}'")
            }
            SpecError::Empty { what } => write!(f, "{what} is empty"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Which section the parser is currently accumulating.
enum Section {
    Head,
    Scenario { name: String, body: Vec<String> },
    Axis(AxisDraft),
}

/// An axis mid-parse: `values`/`key` shorthand and explicit `variant`
/// lines both land here and are reconciled when the section closes.
struct AxisDraft {
    name: String,
    header_line: u32,
    key: Option<String>,
    values: Option<(u32, Vec<String>)>,
    variants: Vec<Variant>,
}

impl AxisDraft {
    fn finish(self) -> Result<Axis, SpecError> {
        let mut variants = self.variants;
        if let Some((line, values)) = self.values {
            if !variants.is_empty() {
                return Err(SpecError::Malformed {
                    line,
                    msg: format!(
                        "axis '{}' mixes 'values =' shorthand with explicit 'variant' lines",
                        self.name
                    ),
                });
            }
            let key = self.key.clone().unwrap_or_else(|| self.name.clone());
            variants = values
                .into_iter()
                .map(|v| Variant {
                    name: v.clone(),
                    bindings: vec![(key.clone(), v)],
                })
                .collect();
        }
        if variants.is_empty() {
            return Err(SpecError::Empty {
                what: format!("axis '{}'", self.name),
            });
        }
        let mut seen = std::collections::BTreeSet::new();
        for v in &variants {
            if !seen.insert(v.name.clone()) {
                return Err(SpecError::DuplicateName {
                    kind: "variant",
                    name: format!("{}/{}", self.name, v.name),
                });
            }
        }
        Ok(Axis {
            name: self.name,
            variants,
        })
    }
}

/// Parse a spec from its text form. See the module docs for the grammar.
pub fn parse_spec(text: &str) -> Result<Spec, SpecError> {
    let mut head: Vec<String> = Vec::new();
    let mut scenarios: Vec<Scenario> = Vec::new();
    let mut axes: Vec<Axis> = Vec::new();
    let mut section = Section::Head;

    // Close out the current section into the spec under construction.
    fn close(
        section: Section,
        scenarios: &mut Vec<Scenario>,
        axes: &mut Vec<Axis>,
    ) -> Result<(), SpecError> {
        match section {
            Section::Head => {}
            Section::Scenario { name, body } => {
                let props =
                    Properties::parse(&body.join("\n")).map_err(|err| SpecError::Props {
                        section: format!("scenario '{name}'"),
                        err,
                    })?;
                scenarios.push(Scenario { name, props });
            }
            Section::Axis(draft) => axes.push(draft.finish()?),
        }
        Ok(())
    }

    for (i, raw) in text.lines().enumerate() {
        let line_no = i as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("//") {
            continue;
        }

        if line.starts_with('[') {
            if !line.ends_with(']') {
                return Err(SpecError::Malformed {
                    line: line_no,
                    msg: format!("unterminated section header '{line}'"),
                });
            }
            let inner = line[1..line.len() - 1].trim();
            let (kind, name) =
                inner
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| SpecError::Malformed {
                        line: line_no,
                        msg: format!("section header '[{inner}]' needs a kind and a name"),
                    })?;
            let name = name.trim();
            if name.is_empty() || name.contains('/') {
                return Err(SpecError::Malformed {
                    line: line_no,
                    msg: format!("bad section name '{name}' ('/' is the trial-id separator)"),
                });
            }
            close(
                std::mem::replace(&mut section, Section::Head),
                &mut scenarios,
                &mut axes,
            )?;
            section = match kind {
                "scenario" => Section::Scenario {
                    name: name.to_string(),
                    body: Vec::new(),
                },
                "axis" => Section::Axis(AxisDraft {
                    name: name.to_string(),
                    header_line: line_no,
                    key: None,
                    values: None,
                    variants: Vec::new(),
                }),
                other => {
                    return Err(SpecError::Malformed {
                        line: line_no,
                        msg: format!("unknown section kind '{other}' (scenario | axis)"),
                    })
                }
            };
            continue;
        }

        match &mut section {
            Section::Head => head.push(raw.to_string()),
            Section::Scenario { body, .. } => body.push(raw.to_string()),
            Section::Axis(draft) => {
                let Some((k, v)) = line.split_once('=') else {
                    return Err(SpecError::Malformed {
                        line: line_no,
                        msg: format!("malformed axis line '{line}'"),
                    });
                };
                let (k, v) = (k.trim(), v.trim());
                if k == "key" {
                    draft.key = Some(v.to_string());
                } else if k == "values" {
                    let values: Vec<String> = v
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect();
                    draft.values = Some((line_no, values));
                } else if let Some(vname) = k.strip_prefix("variant ") {
                    let vname = vname.trim();
                    if vname.is_empty() || vname.contains('/') {
                        return Err(SpecError::Malformed {
                            line: line_no,
                            msg: format!("bad variant name '{vname}'"),
                        });
                    }
                    let mut bindings = Vec::new();
                    for pair in v.split_whitespace() {
                        let Some((bk, bv)) = pair.split_once('=') else {
                            return Err(SpecError::Malformed {
                                line: line_no,
                                msg: format!("variant binding '{pair}' is not key=value"),
                            });
                        };
                        bindings.push((bk.to_string(), bv.to_string()));
                    }
                    draft.variants.push(Variant {
                        name: vname.to_string(),
                        bindings,
                    });
                } else {
                    return Err(SpecError::Malformed {
                        line: line_no,
                        msg: format!(
                            "unknown axis line '{line}' (key = … | values = … | variant N = …)"
                        ),
                    });
                }
                // Every axis keeps its header line for the empty-axis
                // diagnostic even when no values/variant line follows.
                let _ = draft.header_line;
            }
        }
    }
    close(section, &mut scenarios, &mut axes)?;

    let mut defaults = Properties::parse(&head.join("\n")).map_err(|err| SpecError::Props {
        section: "spec head".to_string(),
        err,
    })?;
    let name = defaults.str_or("name", "lab").to_string();
    let seed = defaults.u64_or("seed", 0).map_err(|err| SpecError::Props {
        section: "spec head".to_string(),
        err,
    })?;
    let repeats = defaults
        .u64_or("repeats", 1)
        .map_err(|err| SpecError::Props {
            section: "spec head".to_string(),
            err,
        })?
        .max(1) as u32;
    // The reserved runner keys are consumed here; everything else in the
    // head is a default property.
    let mut cleaned = Properties::new();
    for key in keys_of(&defaults) {
        if key != "name" && key != "seed" && key != "repeats" {
            cleaned.set(&key, defaults.str_or(&key, ""));
        }
    }
    defaults = cleaned;

    if scenarios.is_empty() {
        return Err(SpecError::Empty {
            what: "spec (no [scenario …] sections)".to_string(),
        });
    }
    let mut seen = std::collections::BTreeSet::new();
    for s in &scenarios {
        if !seen.insert(s.name.clone()) {
            return Err(SpecError::DuplicateName {
                kind: "scenario",
                name: s.name.clone(),
            });
        }
    }
    let mut seen = std::collections::BTreeSet::new();
    for a in &axes {
        if !seen.insert(a.name.clone()) {
            return Err(SpecError::DuplicateName {
                kind: "axis",
                name: a.name.clone(),
            });
        }
    }

    Ok(Spec {
        name,
        seed,
        repeats,
        defaults,
        scenarios,
        axes,
    })
}

/// The keys of a properties set, in sorted order. (`Properties` exposes
/// no iterator; round-tripping through its text form keeps this crate on
/// the public surface.)
pub(crate) fn keys_of(p: &Properties) -> Vec<String> {
    p.to_text()
        .lines()
        .filter_map(|l| l.split_once('=').map(|(k, _)| k.trim().to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = "\
name = demo
seed = 7
repeats = 2
run.duration_s = 5

[scenario a]
objects.count = 4

[scenario b]
objects.count = 8
positioning.method = proximity

[axis backend]
key = storage.backend
values = single, sharded(4)

[axis workers]
variant w1 = stream.workers=1
variant w2 = stream.workers=2
";

    #[test]
    fn parses_sections_in_order() {
        let spec = parse_spec(SPEC).unwrap();
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.repeats, 2);
        assert_eq!(spec.defaults.str_or("run.duration_s", ""), "5");
        assert!(!spec.defaults.contains("name"));
        let names: Vec<&str> = spec.scenarios.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        let axes: Vec<&str> = spec.axes.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(axes, ["backend", "workers"]);
        assert_eq!(
            spec.axes[0].variants[1].bindings,
            vec![("storage.backend".to_string(), "sharded(4)".to_string())]
        );
        assert_eq!(
            spec.axes[1].variants[0].bindings,
            vec![("stream.workers".to_string(), "1".to_string())]
        );
    }

    #[test]
    fn values_default_key_is_axis_name() {
        let spec =
            parse_spec("[scenario s]\nx = 1\n[axis trajectory.hz]\nvalues = 1, 2\n").unwrap();
        assert_eq!(
            spec.axes[0].variants[0].bindings,
            vec![("trajectory.hz".to_string(), "1".to_string())]
        );
    }

    #[test]
    fn rejects_structural_errors() {
        assert!(matches!(
            parse_spec("x = 1\n"),
            Err(SpecError::Empty { .. })
        ));
        assert!(matches!(
            parse_spec("[scenario s]\nx = 1\n[axis a]\n"),
            Err(SpecError::Empty { .. })
        ));
        assert!(matches!(
            parse_spec("[scenario s]\nx = 1\n[scenario s]\ny = 2\n"),
            Err(SpecError::DuplicateName { .. })
        ));
        assert!(matches!(
            parse_spec("[bogus s]\n"),
            Err(SpecError::Malformed { .. })
        ));
        assert!(matches!(
            parse_spec("[scenario s]\nnot a property\n"),
            Err(SpecError::Props { .. })
        ));
        assert!(matches!(
            parse_spec("[scenario s]\nx = 1\n[axis a]\nvariant v = nokey\n"),
            Err(SpecError::Malformed { .. })
        ));
        assert!(matches!(
            parse_spec("[scenario a/b]\nx = 1\n"),
            Err(SpecError::Malformed { .. })
        ));
    }

    #[test]
    fn mixing_values_and_variants_is_rejected() {
        let text = "[scenario s]\nx = 1\n[axis a]\nvalues = 1, 2\nvariant v = k=1\n";
        assert!(matches!(parse_spec(text), Err(SpecError::Malformed { .. })));
    }
}
