#![forbid(unsafe_code)]
//! # vita-lab
//!
//! The declarative experiment runner: "as many scenarios as you can
//! imagine" as a data file instead of code.
//!
//! A **spec** (see [`spec`]) names a handful of *scenarios* (properties
//! bodies fed to [`vita_core::load_scenario`]) and *variant axes*
//! (property bindings — storage backend, worker count, positioning
//! method, noise seed, …). [`plan::expand`] turns it into a deterministic
//! **trial plan** — `scenarios × axes × repeats`, in file order — and
//! [`run::run_spec`] executes the plan through [`vita_core::Vita`]
//! batches ([`vita_core::Vita::run_many`] on the shared stage-worker
//! pool), emitting one JSONL record per trial plus analysis tables
//! aggregated by axis ([`report::LabReport`]).
//!
//! ## Determinism
//!
//! Everything about a trial except wall-clock timing is a pure function
//! of the spec text: the plan order, each trial's variant bindings, its
//! derived seed (`run.seed` if the spec pins one, else a SplitMix64 mix
//! of the spec seed and the scenario index; repeats differentiate through
//! [`vita_core::derive_run_seed`] exactly as `run_many` lanes do), and
//! therefore its row counts. Two executions of the same spec produce
//! byte-identical trial records modulo timing fields —
//! [`report::TrialRecord::to_json`] with `timing: false` strips exactly
//! those fields, which is the form the golden-fixture and determinism
//! suites compare.
//!
//! ## Spec format
//!
//! ```text
//! # head: runner keys + defaults merged under every scenario
//! name = example
//! seed = 42
//! repeats = 2
//! run.duration_s = 10
//!
//! [scenario small-office]
//! objects.count = 20
//!
//! [axis backend]
//! key = storage.backend
//! values = single, sharded(8), segmented
//!
//! [axis load]
//! variant light = objects.count=10 stream.workers=1
//! variant heavy = objects.count=40 stream.workers=4
//! ```
//!
//! Axis sections either enumerate `values` for one property key (`key`
//! defaults to the axis name), or spell out named `variant` lines, each a
//! space-separated list of `key=value` bindings. Merge precedence per
//! trial: axis bindings over scenario body over head defaults.
//!
//! Keys not consumed by the layer loaders configure the runner itself:
//!
//! ```text
//! building = office | mall        building.floors = 2
//! deploy.model = coverage | check-point
//! deploy.type = wifi | bluetooth | rfid
//! deploy.devices = 10             deploy.floor = 0
//! exec = batched | solo           # run_many vs sequential run_streaming_as
//! measure.persistence = false     # export/import probe per plan cell
//! serve.rps = 0                   # >0 attaches a fixed-rate query probe
//! serve.duration_ms = 250         serve.workers = 2
//! assert.cross_axis_rows = AXIS   # trials differing only in AXIS must
//!                                 # produce identical row counts
//! ```

pub mod json;
pub mod plan;
pub mod report;
pub mod run;
pub mod spec;

pub use json::{schema_signature, trial_schema_signature, Json, JsonError};
pub use plan::{expand, Trial};
pub use report::{AxisSummary, LabReport, PersistProbe, ServeProbe, TrialRecord, VariantSummary};
pub use run::{run_spec, CrossAxisRows, LabError};
pub use spec::{parse_spec, Axis, Scenario, Spec, SpecError, Variant};
