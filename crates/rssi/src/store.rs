//! Raw RSSI measurement records and their in-memory store.
//!
//! Record format per paper §4.2: "RSSI measurement is stored as
//! (o_id, d_id, rssi)". A timestamp is kept alongside (the DBMS table in the
//! paper is time-indexed; positioning windows need it).

use vita_indoor::{DeviceId, ObjectId, Timestamp};

/// One raw RSSI measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RssiMeasurement {
    pub object: ObjectId,
    pub device: DeviceId,
    /// Measured signal strength, dBm.
    pub rssi: f64,
    pub t: Timestamp,
}

/// Time-ordered store of raw RSSI measurements with per-object access.
#[derive(Debug, Clone, Default)]
pub struct RssiStore {
    /// All measurements sorted by (t, object, device).
    measurements: Vec<RssiMeasurement>,
}

impl RssiStore {
    pub fn new(mut measurements: Vec<RssiMeasurement>) -> Self {
        measurements.sort_by_key(|m| (m.t, m.object, m.device));
        RssiStore { measurements }
    }

    pub fn all(&self) -> &[RssiMeasurement] {
        &self.measurements
    }

    /// Consume the store, yielding its sorted measurements. Used by the
    /// streaming pipeline to move a chunk's rows into storage without
    /// copying.
    pub fn into_measurements(self) -> Vec<RssiMeasurement> {
        self.measurements
    }

    pub fn len(&self) -> usize {
        self.measurements.len()
    }

    pub fn is_empty(&self) -> bool {
        self.measurements.is_empty()
    }

    /// Measurements in the half-open time window `[from, to)`.
    pub fn window(&self, from: Timestamp, to: Timestamp) -> &[RssiMeasurement] {
        let lo = self.measurements.partition_point(|m| m.t < from);
        let hi = self.measurements.partition_point(|m| m.t < to);
        &self.measurements[lo..hi]
    }

    /// Measurements for one object in `[from, to)`.
    pub fn object_window(
        &self,
        object: ObjectId,
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<RssiMeasurement> {
        self.window(from, to)
            .iter()
            .filter(|m| m.object == object)
            .copied()
            .collect()
    }

    /// Distinct objects that appear in the store.
    pub fn objects(&self) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = self.measurements.iter().map(|m| m.object).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Time range covered, as (min, max).
    pub fn time_range(&self) -> Option<(Timestamp, Timestamp)> {
        Some((self.measurements.first()?.t, self.measurements.last()?.t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(o: u32, d: u32, rssi: f64, t: u64) -> RssiMeasurement {
        RssiMeasurement {
            object: ObjectId(o),
            device: DeviceId(d),
            rssi,
            t: Timestamp(t),
        }
    }

    #[test]
    fn store_sorts_by_time() {
        let s = RssiStore::new(vec![
            m(1, 0, -50.0, 300),
            m(0, 0, -40.0, 100),
            m(2, 1, -60.0, 200),
        ]);
        let ts: Vec<u64> = s.all().iter().map(|x| x.t.0).collect();
        assert_eq!(ts, vec![100, 200, 300]);
        assert_eq!(s.time_range(), Some((Timestamp(100), Timestamp(300))));
    }

    #[test]
    fn window_is_half_open() {
        let s = RssiStore::new(vec![
            m(0, 0, -40.0, 100),
            m(0, 0, -41.0, 200),
            m(0, 0, -42.0, 300),
        ]);
        let w = s.window(Timestamp(100), Timestamp(300));
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].t.0, 100);
        assert_eq!(w[1].t.0, 200);
        assert!(s.window(Timestamp(400), Timestamp(500)).is_empty());
    }

    #[test]
    fn object_window_filters() {
        let s = RssiStore::new(vec![
            m(0, 0, -40.0, 100),
            m(1, 0, -45.0, 100),
            m(0, 1, -50.0, 150),
            m(1, 1, -55.0, 250),
        ]);
        let w = s.object_window(ObjectId(0), Timestamp(0), Timestamp(200));
        assert_eq!(w.len(), 2);
        assert!(w.iter().all(|x| x.object == ObjectId(0)));
    }

    #[test]
    fn objects_deduplicated() {
        let s = RssiStore::new(vec![
            m(3, 0, -40.0, 1),
            m(1, 0, -40.0, 2),
            m(3, 1, -40.0, 3),
        ]);
        assert_eq!(s.objects(), vec![ObjectId(1), ObjectId(3)]);
    }

    #[test]
    fn empty_store() {
        let s = RssiStore::default();
        assert!(s.is_empty());
        assert_eq!(s.time_range(), None);
        assert!(s.objects().is_empty());
    }
}
