//! Raw RSSI measurement generation (paper §2, Positioning Layer input).
//!
//! For every device, at that device's detection frequency (or a global
//! override), the generator measures every object that is on the device's
//! floor and within detection range, applying the path-loss model with the
//! wall/obstacle crossing count between device and object.
//!
//! Fluctuation noise is drawn from a generator **derived per measurement**
//! from `(seed, device, object, t)`, so a measurement's value does not
//! depend on the order measurements are produced in. This is what lets the
//! streaming pipeline generate RSSI per trajectory chunk
//! ([`RssiGenerator::measure_trajectory`]) and still emit bit-identical
//! values to the whole-store sweep ([`generate_rssi`]).

use rand::rngs::StdRng;
use rand::SeedableRng;

use vita_devices::DeviceRegistry;
use vita_geometry::{count_crossings, Segment};
use vita_indoor::{DeviceId, Hz, IndoorEnvironment, ObjectId, Timestamp};
use vita_mobility::{Trajectory, TrajectoryStore};

use crate::model::PathLossModel;
use crate::store::{RssiMeasurement, RssiStore};

/// Configuration of the RSSI Measurement Controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RssiConfig {
    pub path_loss: PathLossModel,
    /// Override measurement frequency for all devices; `None` uses each
    /// device's own detection frequency.
    pub sampling_hz: Option<Hz>,
    /// Generation period end (measurements are taken in `[0, duration]`).
    pub duration: Timestamp,
    /// RNG seed (independent of the trajectory seed).
    pub seed: u64,
}

impl Default for RssiConfig {
    fn default() -> Self {
        RssiConfig {
            path_loss: PathLossModel::default(),
            sampling_hz: None,
            duration: Timestamp(10 * 60 * 1000),
            seed: 0x55AA,
        }
    }
}

/// Generate the raw RSSI data for all devices against all trajectories.
/// Whole-store wrapper over [`RssiGenerator::measure_trajectory`].
pub fn generate_rssi(
    env: &IndoorEnvironment,
    devices: &DeviceRegistry,
    trajectories: &TrajectoryStore,
    cfg: &RssiConfig,
) -> RssiStore {
    let generator = RssiGenerator::new(env, devices, cfg);
    let mut measurements: Vec<RssiMeasurement> = Vec::new();
    for (oid, tr) in trajectories.iter() {
        measurements.append(&mut generator.measure_trajectory(*oid, tr));
    }
    RssiStore::new(measurements)
}

/// The RSSI Measurement Controller, set up once per run: per-floor wall
/// sets (including user obstacles) are precomputed so per-chunk generation
/// does no repeated geometry work.
pub struct RssiGenerator<'a> {
    devices: &'a DeviceRegistry,
    cfg: RssiConfig,
    /// Per-floor walls + user-obstacle edges, indexed by floor.
    walls: Vec<Vec<Segment>>,
}

impl<'a> RssiGenerator<'a> {
    pub fn new(env: &IndoorEnvironment, devices: &'a DeviceRegistry, cfg: &RssiConfig) -> Self {
        let walls = (0..env.floors().len())
            .map(|f| env.walls_with_obstacles(vita_indoor::FloorId(f as u32)))
            .collect();
        RssiGenerator {
            devices,
            cfg: *cfg,
            walls,
        }
    }

    /// Measure one object's trajectory against every device. Each device
    /// samples on its own grid anchored at `t = 0` (detection frequency or
    /// the global override), restricted to `[0, duration]` — exactly the
    /// instants the whole-store sweep would evaluate for this object, so
    /// the union over all objects reproduces [`generate_rssi`] exactly.
    /// Measurements are returned in `(device, t)` order; [`RssiStore::new`]
    /// re-sorts into canonical `(t, object, device)` order.
    pub fn measure_trajectory(&self, object: ObjectId, tr: &Trajectory) -> Vec<RssiMeasurement> {
        let mut out = Vec::new();
        let (Some(start), Some(end)) = (tr.start_time(), tr.end_time()) else {
            return out;
        };
        let t_end = end.min(self.cfg.duration);
        for device in self.devices.devices() {
            let hz = self.cfg.sampling_hz.unwrap_or(device.spec.detection_hz);
            let period = hz.period_ms();
            if period == u64::MAX {
                continue;
            }
            let floor_walls = &self.walls[device.floor.index()];
            // First grid instant at or after the object's birth.
            let mut t = Timestamp(start.0.div_ceil(period) * period);
            while t <= t_end {
                if let Some(m) = self.measure_at(device, object, tr, t, floor_walls) {
                    out.push(m);
                }
                t = t.advance(period);
            }
        }
        out
    }

    fn measure_at(
        &self,
        device: &vita_devices::Device,
        object: ObjectId,
        tr: &Trajectory,
        t: Timestamp,
        floor_walls: &[Segment],
    ) -> Option<RssiMeasurement> {
        let (floor, pos) = tr.position_at(t)?;
        if floor != device.floor {
            return None;
        }
        let dist = device.position.dist(pos);
        if dist > device.spec.detection_range {
            return None;
        }
        let crossings = count_crossings(device.position, pos, floor_walls);
        let mut rng = measurement_rng(self.cfg.seed, device.id, object, t);
        let rssi =
            self.cfg
                .path_loss
                .measure(dist, device.spec.rssi_at_1m, crossings, 0.0, &mut rng);
        Some(RssiMeasurement {
            object,
            device: device.id,
            rssi,
            t,
        })
    }
}

/// Noise generator for one measurement, derived from the full measurement
/// identity so values are independent of generation order.
fn measurement_rng(seed: u64, device: DeviceId, object: ObjectId, t: Timestamp) -> StdRng {
    let mut z = seed ^ 0xA076_1D64_78BD_642F;
    for v in [device.0 as u64, object.0 as u64, t.0] {
        z = (z ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z ^= z >> 29;
        z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 32;
    }
    StdRng::seed_from_u64(z)
}

/// Per-device measurement counts, used for deployment diagnostics.
pub fn measurements_per_device(
    store: &RssiStore,
    devices: &DeviceRegistry,
) -> Vec<(DeviceId, usize)> {
    let mut counts = vec![0usize; devices.len()];
    for m in store.all() {
        counts[m.device.index()] += 1;
    }
    devices
        .devices()
        .iter()
        .map(|d| (d.id, counts[d.id.index()]))
        .collect()
}

/// Per-object measurement counts.
pub fn measurements_per_object(store: &RssiStore) -> Vec<(ObjectId, usize)> {
    let mut map: std::collections::BTreeMap<ObjectId, usize> = std::collections::BTreeMap::new();
    for m in store.all() {
        *map.entry(m.object).or_default() += 1;
    }
    map.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NoiseModel;
    use vita_dbi::{office, SynthParams};
    use vita_devices::{deploy, DeploymentModel, DeviceSpec, DeviceType};
    use vita_indoor::{build_environment, BuildParams, FloorId};
    use vita_mobility::{generate, LifespanConfig, MobilityConfig};

    use vita_indoor::Hz as HzT;

    fn setup() -> (IndoorEnvironment, DeviceRegistry, TrajectoryStore) {
        let model = office(&SynthParams::with_floors(1));
        let env = build_environment(&model, &BuildParams::default())
            .unwrap()
            .env;
        let mut reg = DeviceRegistry::new();
        deploy(
            &env,
            &mut reg,
            DeviceSpec::default_for(DeviceType::WiFi),
            FloorId(0),
            DeploymentModel::Coverage,
            8,
        );
        let cfg = MobilityConfig {
            object_count: 8,
            duration: Timestamp(60_000),
            lifespan: LifespanConfig {
                min: Timestamp(60_000),
                max: Timestamp(60_000),
            },
            trajectory_hz: HzT(2.0),
            seed: 5,
            ..Default::default()
        };
        let res = generate(&env, &cfg).unwrap();
        (env, reg, res.trajectories)
    }

    #[test]
    fn generates_measurements_within_range_only() {
        let (env, reg, trs) = setup();
        let cfg = RssiConfig {
            duration: Timestamp(60_000),
            ..Default::default()
        };
        let store = generate_rssi(&env, &reg, &trs, &cfg);
        assert!(!store.is_empty(), "no measurements generated");
        for m in store.all() {
            let dev = reg.get(m.device).unwrap();
            let tr = trs.get(m.object).unwrap();
            let (floor, pos) = tr.position_at(m.t).unwrap();
            assert_eq!(floor, dev.floor);
            assert!(dev.position.dist(pos) <= dev.spec.detection_range + 1e-9);
        }
    }

    #[test]
    fn stronger_rssi_when_closer() {
        let (env, reg, trs) = setup();
        let cfg = RssiConfig {
            path_loss: PathLossModel {
                fluctuation: NoiseModel::None,
                ..Default::default()
            },
            duration: Timestamp(60_000),
            ..Default::default()
        };
        let store = generate_rssi(&env, &reg, &trs, &cfg);
        // Group measurements by (device, wall-crossing count) and check the
        // distance-rssi anticorrelation on clear-path pairs.
        let mut clear: Vec<(f64, f64)> = Vec::new(); // (dist, rssi)
        for m in store.all().iter().take(4000) {
            let dev = reg.get(m.device).unwrap();
            let (_, pos) = trs.get(m.object).unwrap().position_at(m.t).unwrap();
            let walls = env.walls_with_obstacles(dev.floor);
            if vita_geometry::count_crossings(dev.position, pos, &walls) == 0 {
                clear.push((dev.position.dist(pos), m.rssi));
            }
        }
        assert!(clear.len() > 10);
        // Pairwise monotonicity on a sample.
        let mut violations = 0;
        let mut checks = 0;
        for i in (0..clear.len()).step_by(7) {
            for j in (0..clear.len()).step_by(11) {
                let (d1, r1) = clear[i];
                let (d2, r2) = clear[j];
                if d1 + 0.5 < d2 {
                    checks += 1;
                    if r1 < r2 {
                        violations += 1;
                    }
                }
            }
        }
        assert!(checks > 0);
        assert_eq!(violations, 0, "noiseless RSSI not monotone in distance");
    }

    #[test]
    fn sampling_override_changes_measurement_count() {
        let (env, reg, trs) = setup();
        let slow = RssiConfig {
            sampling_hz: Some(HzT(0.5)),
            duration: Timestamp(60_000),
            path_loss: PathLossModel {
                fluctuation: NoiseModel::None,
                ..Default::default()
            },
            ..Default::default()
        };
        let fast = RssiConfig {
            sampling_hz: Some(HzT(4.0)),
            ..slow
        };
        let n_slow = generate_rssi(&env, &reg, &trs, &slow).len();
        let n_fast = generate_rssi(&env, &reg, &trs, &fast).len();
        assert!(n_fast > 4 * n_slow, "fast {n_fast} vs slow {n_slow}");
    }

    #[test]
    fn generation_is_deterministic() {
        let (env, reg, trs) = setup();
        let cfg = RssiConfig {
            duration: Timestamp(30_000),
            ..Default::default()
        };
        let a = generate_rssi(&env, &reg, &trs, &cfg);
        let b = generate_rssi(&env, &reg, &trs, &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.all().iter().zip(b.all()) {
            assert_eq!(x.object, y.object);
            assert_eq!(x.device, y.device);
            assert_eq!(x.t, y.t);
            assert!((x.rssi - y.rssi).abs() < 1e-12);
        }
    }

    #[test]
    fn per_trajectory_chunks_reproduce_whole_store_sweep() {
        // The streaming pipeline measures one trajectory at a time; the
        // union must equal generate_rssi bit-for-bit (per-measurement
        // derived noise makes values order-independent).
        let (env, reg, trs) = setup();
        let cfg = RssiConfig {
            duration: Timestamp(45_000),
            ..Default::default()
        };
        let whole = generate_rssi(&env, &reg, &trs, &cfg);
        let generator = RssiGenerator::new(&env, &reg, &cfg);
        let mut union: Vec<RssiMeasurement> = Vec::new();
        for (oid, tr) in trs.iter() {
            union.extend(generator.measure_trajectory(*oid, tr));
        }
        let union = RssiStore::new(union);
        assert_eq!(union.len(), whole.len());
        for (a, b) in union.all().iter().zip(whole.all()) {
            assert_eq!(a.object, b.object);
            assert_eq!(a.device, b.device);
            assert_eq!(a.t, b.t);
            assert_eq!(a.rssi.to_bits(), b.rssi.to_bits(), "noise differs");
        }
    }

    #[test]
    fn empty_trajectory_yields_no_measurements() {
        let (env, reg, _) = setup();
        let generator = RssiGenerator::new(&env, &reg, &RssiConfig::default());
        let empty = vita_mobility::Trajectory::default();
        assert!(generator.measure_trajectory(ObjectId(0), &empty).is_empty());
    }

    #[test]
    fn per_device_and_per_object_counts_sum_to_total() {
        let (env, reg, trs) = setup();
        let cfg = RssiConfig {
            duration: Timestamp(30_000),
            ..Default::default()
        };
        let store = generate_rssi(&env, &reg, &trs, &cfg);
        let dsum: usize = measurements_per_device(&store, &reg)
            .iter()
            .map(|(_, c)| c)
            .sum();
        let osum: usize = measurements_per_object(&store).iter().map(|(_, c)| c).sum();
        assert_eq!(dsum, store.len());
        assert_eq!(osum, store.len());
    }

    #[test]
    fn no_devices_no_measurements() {
        let (env, _, trs) = setup();
        let empty = DeviceRegistry::new();
        let store = generate_rssi(&env, &empty, &trs, &RssiConfig::default());
        assert_eq!(store.len(), 0);
    }
}
