//! The path-loss and noise models (paper §3.2).
//!
//! "We implement a generic, flexible path loss model as
//! `rssi(dBm) = −10·n·log10(dt) + A + N_ob + N_f`. Specifically, rssi is the
//! measured value; dt is the present transmission distance between the
//! positioning device and the observed object. We allow users to define
//! three variables: A is a calibration RSSI value measured at 1 meter, N_ob
//! is the noise caused by influence of obstacles like walls and doors, and
//! N_f is the noise for signal fluctuation related to temperature, humidity,
//! etc; a default setting of these variables is provided."

use rand::Rng;

/// Signal-fluctuation noise `N_f`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseModel {
    /// No fluctuation (ideal propagation; useful for ground-truth studies).
    None,
    /// Zero-mean Gaussian with standard deviation `sigma` dBm (the common
    /// log-normal shadowing assumption).
    Gaussian { sigma: f64 },
    /// Uniform in `[-half_width, +half_width]` dBm.
    Uniform { half_width: f64 },
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::Gaussian { sigma: 2.0 }
    }
}

impl NoiseModel {
    /// Draw one fluctuation sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            NoiseModel::None => 0.0,
            NoiseModel::Gaussian { sigma } => gaussian(rng) * sigma,
            NoiseModel::Uniform { half_width } => rng.gen_range(-half_width..=half_width),
        }
    }
}

/// Standard normal via Box–Muller (rand_distr is outside the allowed
/// dependency set; two uniforms suffice).
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The path-loss model with obstacle and fluctuation terms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathLossModel {
    /// Path-loss exponent `n` (2 in free space, 2.5–4 indoors).
    pub exponent: f64,
    /// Attenuation per crossed wall, dBm (the `N_ob` contribution of one
    /// wall; Fig. 3(a): walls between object and device weaken the signal).
    pub wall_attenuation_dbm: f64,
    /// Fluctuation model `N_f`.
    pub fluctuation: NoiseModel,
}

impl Default for PathLossModel {
    fn default() -> Self {
        PathLossModel {
            exponent: 3.0,
            wall_attenuation_dbm: 4.0,
            fluctuation: NoiseModel::default(),
        }
    }
}

impl PathLossModel {
    /// Deterministic part of the model: distance decay + calibration +
    /// obstacle attenuation. `a_1m` is the device's calibration RSSI at 1 m;
    /// `extra_obstacle_dbm` adds user-deployed obstacle attenuation beyond
    /// the per-wall term.
    pub fn mean_rssi(
        &self,
        dist_m: f64,
        a_1m: f64,
        walls_crossed: usize,
        extra_obstacle_dbm: f64,
    ) -> f64 {
        let d = dist_m.max(0.1); // below 10 cm the log model is meaningless
        let n_ob = -(self.wall_attenuation_dbm * walls_crossed as f64) - extra_obstacle_dbm;
        -10.0 * self.exponent * d.log10() + a_1m + n_ob
    }

    /// One noisy measurement.
    pub fn measure<R: Rng + ?Sized>(
        &self,
        dist_m: f64,
        a_1m: f64,
        walls_crossed: usize,
        extra_obstacle_dbm: f64,
        rng: &mut R,
    ) -> f64 {
        self.mean_rssi(dist_m, a_1m, walls_crossed, extra_obstacle_dbm)
            + self.fluctuation.sample(rng)
    }

    /// Invert the noiseless model: the distance at which the mean RSSI
    /// equals `rssi`. This is the default RSSI→distance conversion used by
    /// trilateration (paper §3.3.1); walls are unknown to the estimator and
    /// therefore ignored, which is exactly the error source the toolkit
    /// lets researchers study.
    pub fn invert(&self, rssi: f64, a_1m: f64) -> f64 {
        10f64.powf((a_1m - rssi) / (10.0 * self.exponent))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const A: f64 = -40.0;

    #[test]
    fn rssi_decreases_with_distance() {
        let m = PathLossModel::default();
        let r1 = m.mean_rssi(1.0, A, 0, 0.0);
        let r5 = m.mean_rssi(5.0, A, 0, 0.0);
        let r20 = m.mean_rssi(20.0, A, 0, 0.0);
        assert!(r1 > r5 && r5 > r20);
        // At 1 m, rssi == A exactly.
        assert!((r1 - A).abs() < 1e-9);
    }

    #[test]
    fn walls_attenuate_like_fig3() {
        // Fig. 3(a): equal distances, but the device behind walls reads a
        // *smaller* RSSI.
        let m = PathLossModel::default();
        let clear = m.mean_rssi(8.0, A, 0, 0.0);
        let blocked = m.mean_rssi(8.0, A, 2, 0.0);
        assert!(blocked < clear);
        assert!((clear - blocked - 2.0 * m.wall_attenuation_dbm).abs() < 1e-9);
    }

    #[test]
    fn obstacle_extra_attenuation_applies() {
        let m = PathLossModel::default();
        let base = m.mean_rssi(4.0, A, 1, 0.0);
        let extra = m.mean_rssi(4.0, A, 1, 6.0);
        assert!((base - extra - 6.0).abs() < 1e-9);
    }

    #[test]
    fn inversion_round_trips_without_walls() {
        let m = PathLossModel {
            fluctuation: NoiseModel::None,
            ..Default::default()
        };
        for d in [0.5, 1.0, 3.0, 10.0, 25.0] {
            let rssi = m.mean_rssi(d, A, 0, 0.0);
            let back = m.invert(rssi, A);
            assert!((back - d.max(0.1)).abs() < 1e-6, "d={d}: got {back}");
        }
    }

    #[test]
    fn inversion_overestimates_through_walls() {
        // Walls lower RSSI, so the naive inversion overestimates distance —
        // the systematic trilateration error in NLOS conditions.
        let m = PathLossModel {
            fluctuation: NoiseModel::None,
            ..Default::default()
        };
        let rssi = m.mean_rssi(5.0, A, 2, 0.0);
        let est = m.invert(rssi, A);
        assert!(est > 5.0, "estimate {est} should exceed true 5 m");
    }

    #[test]
    fn gaussian_noise_statistics() {
        let mut rng = StdRng::seed_from_u64(42);
        let noise = NoiseModel::Gaussian { sigma: 3.0 };
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| noise.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.15, "sd {}", var.sqrt());
    }

    #[test]
    fn uniform_noise_bounded() {
        let mut rng = StdRng::seed_from_u64(43);
        let noise = NoiseModel::Uniform { half_width: 1.5 };
        for _ in 0..1000 {
            let s = noise.sample(&mut rng);
            assert!((-1.5..=1.5).contains(&s));
        }
    }

    #[test]
    fn none_noise_is_zero() {
        let mut rng = StdRng::seed_from_u64(44);
        assert_eq!(NoiseModel::None.sample(&mut rng), 0.0);
    }

    #[test]
    fn tiny_distances_clamped() {
        let m = PathLossModel {
            fluctuation: NoiseModel::None,
            ..Default::default()
        };
        let at_zero = m.mean_rssi(0.0, A, 0, 0.0);
        let at_clamp = m.mean_rssi(0.1, A, 0, 0.0);
        assert_eq!(at_zero, at_clamp);
        assert!(at_zero.is_finite());
    }
}
