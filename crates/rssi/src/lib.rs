#![forbid(unsafe_code)]
//! # vita-rssi
//!
//! Raw RSSI measurement generation: the first half of Vita's Positioning
//! Layer (paper §2, §3.2).
//!
//! * [`model`] — the paper's path-loss model
//!   `rssi = −10·n·log10(dt) + A + N_ob + N_f`, with configurable exponent,
//!   per-wall attenuation (obstacles between device and object are counted
//!   geometrically, reproducing Fig. 3(a)'s d1/d2 asymmetry), and
//!   fluctuation noise models.
//! * [`generate`] — the RSSI Measurement Controller: sampling every device
//!   against every trajectory at the configured frequency.
//! * [`store`] — the `(o_id, d_id, rssi)` record format (§4.2) with
//!   time-window queries used by the positioning methods.

pub mod generate;
pub mod model;
pub mod store;

pub use generate::{
    generate_rssi, measurements_per_device, measurements_per_object, RssiConfig, RssiGenerator,
};
pub use model::{gaussian, NoiseModel, PathLossModel};
pub use store::{RssiMeasurement, RssiStore};
