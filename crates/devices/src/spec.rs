//! Device types, type-dependent properties, and the device registry.

use vita_geometry::Point;
use vita_indoor::{DeviceId, FloorId, Hz};

/// The short-range wireless technologies Vita models (paper §1: "Typical
/// indoor positioning systems employ short-range wireless technologies such
/// as Wi-Fi, Bluetooth, RFID").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceType {
    WiFi,
    Bluetooth,
    Rfid,
}

impl DeviceType {
    /// All supported types.
    pub const ALL: [DeviceType; 3] = [DeviceType::WiFi, DeviceType::Bluetooth, DeviceType::Rfid];

    pub fn name(&self) -> &'static str {
        match self {
            DeviceType::WiFi => "Wi-Fi",
            DeviceType::Bluetooth => "Bluetooth",
            DeviceType::Rfid => "RFID",
        }
    }

    /// Which positioning methods apply (paper §5: "all three methods can be
    /// applied to Wi-Fi devices, whereas fingerprinting currently does not
    /// apply to RFID and Bluetooth devices").
    pub fn supports_fingerprinting(&self) -> bool {
        matches!(self, DeviceType::WiFi)
    }

    pub fn supports_trilateration(&self) -> bool {
        // RSSI-to-distance conversion is meaningful for radio beacons; RFID
        // proximity readers are used with the proximity method instead.
        matches!(self, DeviceType::WiFi | DeviceType::Bluetooth)
    }

    pub fn supports_proximity(&self) -> bool {
        true
    }
}

/// Type-dependent configuration for a batch of devices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSpec {
    pub device_type: DeviceType,
    /// Maximum distance (metres) at which the device detects/measures an
    /// object.
    pub detection_range: f64,
    /// How often the device performs a detection/measurement operation.
    pub detection_hz: Hz,
    /// Transmit power calibration: expected RSSI at 1 m (the `A` of the
    /// path-loss model, dBm).
    pub rssi_at_1m: f64,
}

impl DeviceSpec {
    /// Sensible defaults per technology ("a default setting ... is provided
    /// for a quick customization", paper §3.2).
    pub fn default_for(device_type: DeviceType) -> Self {
        match device_type {
            DeviceType::WiFi => DeviceSpec {
                device_type,
                detection_range: 30.0,
                detection_hz: Hz(1.0),
                rssi_at_1m: -40.0,
            },
            DeviceType::Bluetooth => DeviceSpec {
                device_type,
                detection_range: 12.0,
                detection_hz: Hz(2.0),
                rssi_at_1m: -55.0,
            },
            DeviceType::Rfid => DeviceSpec {
                device_type,
                detection_range: 3.0,
                detection_hz: Hz(4.0),
                rssi_at_1m: -60.0,
            },
        }
    }
}

/// One deployed positioning device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Device {
    pub id: DeviceId,
    pub spec: DeviceSpec,
    pub floor: FloorId,
    pub position: Point,
}

impl Device {
    /// Plan-view distance from the device to a point on the same floor.
    pub fn distance_to(&self, p: Point) -> f64 {
        self.position.dist(p)
    }

    /// Is `p` (same floor) within detection range?
    pub fn in_range(&self, p: Point) -> bool {
        self.distance_to(p) <= self.spec.detection_range
    }
}

/// The set of deployed devices — the Infrastructure Layer's "positioning
/// device data" product.
#[derive(Debug, Clone, Default)]
pub struct DeviceRegistry {
    devices: Vec<Device>,
}

impl DeviceRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Manually place one device.
    pub fn place(&mut self, spec: DeviceSpec, floor: FloorId, position: Point) -> DeviceId {
        let id = DeviceId(self.devices.len() as u32);
        self.devices.push(Device {
            id,
            spec,
            floor,
            position,
        });
        id
    }

    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    pub fn len(&self) -> usize {
        self.devices.len()
    }

    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    pub fn get(&self, id: DeviceId) -> Option<&Device> {
        self.devices.get(id.index())
    }

    /// Devices on one floor.
    pub fn on_floor(&self, floor: FloorId) -> impl Iterator<Item = &Device> {
        self.devices.iter().filter(move |d| d.floor == floor)
    }

    /// Devices of one type.
    pub fn of_type(&self, t: DeviceType) -> impl Iterator<Item = &Device> {
        self.devices.iter().filter(move |d| d.spec.device_type == t)
    }

    /// Devices on `floor` whose detection range covers `p`.
    pub fn covering(&self, floor: FloorId, p: Point) -> impl Iterator<Item = &Device> {
        self.devices
            .iter()
            .filter(move |d| d.floor == floor && d.in_range(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ordered_sensibly() {
        let wifi = DeviceSpec::default_for(DeviceType::WiFi);
        let bt = DeviceSpec::default_for(DeviceType::Bluetooth);
        let rfid = DeviceSpec::default_for(DeviceType::Rfid);
        assert!(wifi.detection_range > bt.detection_range);
        assert!(bt.detection_range > rfid.detection_range);
        // Faster polling for shorter-range tech.
        assert!(rfid.detection_hz.0 > wifi.detection_hz.0);
    }

    #[test]
    fn method_support_matrix_matches_paper() {
        assert!(DeviceType::WiFi.supports_fingerprinting());
        assert!(!DeviceType::Bluetooth.supports_fingerprinting());
        assert!(!DeviceType::Rfid.supports_fingerprinting());
        assert!(DeviceType::WiFi.supports_trilateration());
        assert!(DeviceType::Bluetooth.supports_trilateration());
        assert!(!DeviceType::Rfid.supports_trilateration());
        for t in DeviceType::ALL {
            assert!(t.supports_proximity());
        }
    }

    #[test]
    fn registry_place_and_query() {
        let mut reg = DeviceRegistry::new();
        let spec = DeviceSpec::default_for(DeviceType::Bluetooth);
        let a = reg.place(spec, FloorId(0), Point::new(0.0, 0.0));
        let b = reg.place(spec, FloorId(0), Point::new(50.0, 0.0));
        let c = reg.place(spec, FloorId(1), Point::new(0.0, 0.0));
        assert_eq!(reg.len(), 3);
        assert_ne!(a, b);
        assert_eq!(reg.on_floor(FloorId(0)).count(), 2);
        assert_eq!(reg.of_type(DeviceType::Bluetooth).count(), 3);
        assert_eq!(reg.of_type(DeviceType::WiFi).count(), 0);
        // Coverage: BT range is 12 m.
        let near: Vec<_> = reg.covering(FloorId(0), Point::new(5.0, 0.0)).collect();
        assert_eq!(near.len(), 1);
        assert_eq!(near[0].id, a);
        assert_eq!(reg.covering(FloorId(1), Point::new(5.0, 0.0)).count(), 1);
        assert_eq!(reg.get(c).unwrap().floor, FloorId(1));
    }

    #[test]
    fn device_range_check() {
        let spec = DeviceSpec::default_for(DeviceType::Rfid);
        let d = Device {
            id: DeviceId(0),
            spec,
            floor: FloorId(0),
            position: Point::new(1.0, 1.0),
        };
        assert!(d.in_range(Point::new(2.0, 1.0)));
        assert!(!d.in_range(Point::new(9.0, 1.0)));
        assert!((d.distance_to(Point::new(4.0, 5.0)) - 5.0).abs() < 1e-9);
    }
}
