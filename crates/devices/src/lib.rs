#![forbid(unsafe_code)]
//! # vita-devices
//!
//! Positioning devices and deployment models: the Positioning Device
//! Controller of the Infrastructure Layer (paper §2).
//!
//! "The Positioning Device Controller allows a user to configure the
//! devices' number, deployed locations, type, and other type-dependent
//! properties (e.g., the detection range of RFID readers)."
//!
//! Two deployment models (paper §3.2, Fig. 3):
//!
//! * [`DeploymentModel::Coverage`] — "devices should be close to the wall to
//!   get power supply and they should be separate from each other to have
//!   maximum signal coverage" (how access points are installed).
//! * [`DeploymentModel::CheckPoint`] — "devices are deployed at entrances to
//!   rooms and/or hotspots in large rooms".
//!
//! Devices may also be placed manually with [`DeviceRegistry::place`].

pub mod deploy;
pub mod spec;

pub use deploy::{coverage_fraction, deploy, CoverageStats, DeploymentModel};
pub use spec::{Device, DeviceRegistry, DeviceSpec, DeviceType};
