//! Deployment models for positioning devices (paper §3.2).
//!
//! In paper Fig. 3, the ground floor uses the *coverage* model (wall-mounted
//! access points spread for maximum coverage) and the first floor the
//! *check-point* model (devices at room entrances and hotspots).

use rand::Rng;

use vita_geometry::{Point, PolygonSampler};
use vita_indoor::{DoorKind, FloorId, IndoorEnvironment};

use crate::spec::{DeviceRegistry, DeviceSpec};

/// How devices are positioned on a floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeploymentModel {
    /// Wall-adjacent, mutually spread positions (access-point style).
    Coverage,
    /// At doors (entrances) and at centroids of large partitions (hotspots).
    CheckPoint,
}

/// Deploy `count` devices of `spec` on `floor` of `env` following `model`.
///
/// Returns the ids of the newly placed devices. Deterministic for a given
/// environment and parameters.
pub fn deploy(
    env: &IndoorEnvironment,
    registry: &mut DeviceRegistry,
    spec: DeviceSpec,
    floor: FloorId,
    model: DeploymentModel,
    count: usize,
) -> Vec<vita_indoor::DeviceId> {
    let positions = match model {
        DeploymentModel::Coverage => coverage_positions(env, floor, count),
        DeploymentModel::CheckPoint => checkpoint_positions(env, floor, count),
    };
    positions
        .into_iter()
        .map(|p| registry.place(spec, floor, p))
        .collect()
}

/// Coverage model: candidates along every wall edge of every partition,
/// inset towards the partition interior (power from the wall, antenna in the
/// room), then greedy k-center selection for maximum mutual separation.
fn coverage_positions(env: &IndoorEnvironment, floor: FloorId, count: usize) -> Vec<Point> {
    const CANDIDATE_SPACING: f64 = 2.0;
    const WALL_INSET: f64 = 0.4;

    let mut candidates: Vec<Point> = Vec::new();
    for &pid in &env.floor(floor).partitions {
        let poly = &env.partition(pid).polygon;
        let centroid = poly.centroid();
        for edge in poly.edges() {
            let len = edge.length();
            let steps = (len / CANDIDATE_SPACING).floor().max(1.0) as usize;
            for k in 0..=steps {
                let t = (k as f64 + 0.5) / (steps as f64 + 1.0);
                let on_wall = edge.at(t);
                // Inset towards the centroid so the device sits inside.
                let inward = on_wall.to(centroid);
                let Some(u) = inward.normalized() else {
                    continue;
                };
                let p = on_wall + u * WALL_INSET;
                if poly.contains(p) {
                    candidates.push(p);
                }
            }
        }
    }
    greedy_k_center(candidates, count)
}

/// Greedy k-center (farthest-point) selection: start from the candidate
/// farthest from the global centroid, then repeatedly add the candidate
/// maximizing its distance to the already selected set.
fn greedy_k_center(candidates: Vec<Point>, count: usize) -> Vec<Point> {
    if candidates.is_empty() || count == 0 {
        return Vec::new();
    }
    let cx = candidates.iter().map(|p| p.x).sum::<f64>() / candidates.len() as f64;
    let cy = candidates.iter().map(|p| p.y).sum::<f64>() / candidates.len() as f64;
    let centroid = Point::new(cx, cy);

    let mut selected: Vec<Point> = Vec::with_capacity(count);
    let first = candidates
        .iter()
        .copied()
        .max_by(|a, b| a.dist2(centroid).partial_cmp(&b.dist2(centroid)).unwrap())
        .expect("non-empty candidates");
    selected.push(first);

    let mut min_dist: Vec<f64> = candidates.iter().map(|c| c.dist2(first)).collect();
    while selected.len() < count.min(candidates.len()) {
        let (best_idx, best_d) = min_dist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, d)| (i, *d))
            .expect("non-empty");
        if best_d <= 1e-12 {
            break; // all remaining candidates coincide with selected ones
        }
        let chosen = candidates[best_idx];
        selected.push(chosen);
        for (i, c) in candidates.iter().enumerate() {
            min_dist[i] = min_dist[i].min(c.dist2(chosen));
        }
    }
    selected
}

/// Check-point model: door positions first (widest doors first — main
/// entrances and shop fronts), then centroids of the largest partitions as
/// hotspot monitors.
fn checkpoint_positions(env: &IndoorEnvironment, floor: FloorId, count: usize) -> Vec<Point> {
    let mut positions: Vec<Point> = Vec::new();

    // Doors on the floor, widest first; openings (decomposition artifacts)
    // are not real entrances and come last.
    let mut doors: Vec<_> = env.doors_on(floor).collect();
    doors.sort_by(|a, b| {
        let rank = |d: &&vita_indoor::Door| match d.kind {
            DoorKind::Door => 0,
            DoorKind::Opening => 1,
        };
        rank(a)
            .cmp(&rank(b))
            .then(
                b.width
                    .partial_cmp(&a.width)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(a.id.cmp(&b.id))
    });
    for d in doors {
        if positions.len() >= count {
            return positions;
        }
        if d.kind == DoorKind::Door {
            // Inset slightly into the first partition so the device is
            // indoors even for perimeter entrance doors.
            let target = env.partition(d.partitions.0).polygon.centroid();
            let p = match d.position.to(target).normalized() {
                Some(u) => d.position + u * 0.5,
                None => d.position,
            };
            positions.push(p);
        }
    }

    // Hotspots: largest partitions' centroids.
    let mut parts: Vec<_> = env
        .floor(floor)
        .partitions
        .iter()
        .map(|&pid| env.partition(pid))
        .collect();
    parts.sort_by(|a, b| {
        b.area()
            .partial_cmp(&a.area())
            .unwrap()
            .then(a.id.cmp(&b.id))
    });
    for p in parts {
        if positions.len() >= count {
            break;
        }
        let c = p.centroid();
        if p.polygon.contains(c) && !positions.iter().any(|q| q.dist(c) < 1.0) {
            positions.push(c);
        }
    }
    positions
}

/// Coverage statistics for a deployed floor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageStats {
    /// Fraction of sampled walkable points within range of ≥1 device.
    pub covered_fraction: f64,
    /// Mean number of devices in range over sampled points (localizability:
    /// trilateration needs ≥3).
    pub mean_devices_in_range: f64,
    /// Fraction of sampled points with ≥3 devices in range.
    pub trilateration_ready_fraction: f64,
}

/// Monte-Carlo coverage estimate over the walkable area of `floor`.
pub fn coverage_fraction<R: Rng + ?Sized>(
    env: &IndoorEnvironment,
    registry: &DeviceRegistry,
    floor: FloorId,
    samples: usize,
    rng: &mut R,
) -> CoverageStats {
    let parts: Vec<_> = env
        .floor(floor)
        .partitions
        .iter()
        .map(|&pid| env.partition(pid))
        .collect();
    if parts.is_empty() || samples == 0 {
        return CoverageStats {
            covered_fraction: 0.0,
            mean_devices_in_range: 0.0,
            trilateration_ready_fraction: 0.0,
        };
    }
    // Area-weighted sampling across partitions.
    let areas: Vec<f64> = parts.iter().map(|p| p.area()).collect();
    let total: f64 = areas.iter().sum();
    let samplers: Vec<PolygonSampler> = parts
        .iter()
        .map(|p| PolygonSampler::new(&p.polygon))
        .collect();

    let mut covered = 0usize;
    let mut tri_ready = 0usize;
    let mut in_range_sum = 0usize;
    for _ in 0..samples {
        let mut pick = rng.gen::<f64>() * total;
        let mut idx = 0;
        for (i, a) in areas.iter().enumerate() {
            if pick < *a {
                idx = i;
                break;
            }
            pick -= a;
            idx = i;
        }
        let p = samplers[idx].sample(rng);
        let n = registry.covering(floor, p).count();
        if n >= 1 {
            covered += 1;
        }
        if n >= 3 {
            tri_ready += 1;
        }
        in_range_sum += n;
    }
    CoverageStats {
        covered_fraction: covered as f64 / samples as f64,
        mean_devices_in_range: in_range_sum as f64 / samples as f64,
        trilateration_ready_fraction: tri_ready as f64 / samples as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeviceType;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vita_dbi::{office, SynthParams};
    use vita_indoor::{build_environment, BuildParams};

    fn env() -> IndoorEnvironment {
        let model = office(&SynthParams::with_floors(2));
        build_environment(&model, &BuildParams::default())
            .unwrap()
            .env
    }

    #[test]
    fn coverage_model_places_requested_count_indoors() {
        let env = env();
        let mut reg = DeviceRegistry::new();
        let spec = DeviceSpec::default_for(DeviceType::WiFi);
        let ids = deploy(
            &env,
            &mut reg,
            spec,
            FloorId(0),
            DeploymentModel::Coverage,
            12,
        );
        assert_eq!(ids.len(), 12);
        for d in reg.devices() {
            assert!(
                env.locate(d.floor, d.position).is_some(),
                "device at {} is outdoors",
                d.position
            );
        }
    }

    #[test]
    fn coverage_model_devices_are_wall_adjacent_and_spread() {
        let env = env();
        let mut reg = DeviceRegistry::new();
        let spec = DeviceSpec::default_for(DeviceType::WiFi);
        deploy(
            &env,
            &mut reg,
            spec,
            FloorId(0),
            DeploymentModel::Coverage,
            8,
        );
        // Wall-adjacent: each device within ~0.5 m of its partition boundary.
        for d in reg.devices() {
            let pid = env.locate(d.floor, d.position).unwrap();
            let bd = env.partition(pid).polygon.boundary_dist(d.position);
            assert!(bd < 0.6, "device not wall-adjacent (boundary dist {bd})");
        }
        // Spread: min pairwise distance should be meaningful (> 3 m in a
        // 42 m-wide building with 8 devices).
        let ds = reg.devices();
        let mut min_pair = f64::INFINITY;
        for i in 0..ds.len() {
            for j in i + 1..ds.len() {
                min_pair = min_pair.min(ds[i].position.dist(ds[j].position));
            }
        }
        assert!(min_pair > 3.0, "devices clumped: min pair dist {min_pair}");
    }

    #[test]
    fn checkpoint_model_prefers_doors() {
        let env = env();
        let mut reg = DeviceRegistry::new();
        let spec = DeviceSpec::default_for(DeviceType::Rfid);
        deploy(
            &env,
            &mut reg,
            spec,
            FloorId(0),
            DeploymentModel::CheckPoint,
            6,
        );
        assert_eq!(reg.len(), 6);
        // Every placed device is within 1 m of some real door.
        for d in reg.devices() {
            let near_door = env
                .doors_on(FloorId(0))
                .filter(|dr| dr.kind == DoorKind::Door)
                .any(|dr| dr.position.dist(d.position) < 1.0);
            assert!(near_door, "checkpoint device not at a door: {}", d.position);
        }
    }

    #[test]
    fn checkpoint_model_overflows_to_hotspots() {
        let env = env();
        let door_count = env
            .doors_on(FloorId(0))
            .filter(|d| d.kind == DoorKind::Door)
            .count();
        let mut reg = DeviceRegistry::new();
        let spec = DeviceSpec::default_for(DeviceType::Bluetooth);
        deploy(
            &env,
            &mut reg,
            spec,
            FloorId(0),
            DeploymentModel::CheckPoint,
            door_count + 3,
        );
        assert_eq!(reg.len(), door_count + 3, "hotspot overflow failed");
    }

    #[test]
    fn more_devices_cover_more_area() {
        let env = env();
        let spec = DeviceSpec {
            detection_range: 8.0,
            ..DeviceSpec::default_for(DeviceType::WiFi)
        };
        let mut frac = Vec::new();
        for n in [2usize, 6, 16] {
            let mut reg = DeviceRegistry::new();
            deploy(
                &env,
                &mut reg,
                spec,
                FloorId(0),
                DeploymentModel::Coverage,
                n,
            );
            let mut rng = StdRng::seed_from_u64(1);
            let stats = coverage_fraction(&env, &reg, FloorId(0), 2000, &mut rng);
            frac.push(stats.covered_fraction);
        }
        assert!(
            frac[0] < frac[1] && frac[1] <= frac[2],
            "coverage not monotone: {frac:?}"
        );
        assert!(
            frac[2] > 0.9,
            "16 × 8 m devices should cover most of the floor"
        );
    }

    #[test]
    fn coverage_beats_checkpoint_on_area_coverage() {
        // The headline property of Fig. 3: the coverage model maximizes
        // area coverage relative to placing devices at doors.
        let env = env();
        let spec = DeviceSpec {
            detection_range: 6.0,
            ..DeviceSpec::default_for(DeviceType::WiFi)
        };
        let n = 10;
        let mut reg_cov = DeviceRegistry::new();
        deploy(
            &env,
            &mut reg_cov,
            spec,
            FloorId(0),
            DeploymentModel::Coverage,
            n,
        );
        let mut reg_cp = DeviceRegistry::new();
        deploy(
            &env,
            &mut reg_cp,
            spec,
            FloorId(0),
            DeploymentModel::CheckPoint,
            n,
        );
        let mut rng = StdRng::seed_from_u64(2);
        let cov = coverage_fraction(&env, &reg_cov, FloorId(0), 3000, &mut rng);
        let mut rng = StdRng::seed_from_u64(2);
        let cp = coverage_fraction(&env, &reg_cp, FloorId(0), 3000, &mut rng);
        assert!(
            cov.covered_fraction >= cp.covered_fraction,
            "coverage {} < checkpoint {}",
            cov.covered_fraction,
            cp.covered_fraction
        );
    }

    #[test]
    fn deployment_is_deterministic() {
        let env = env();
        let spec = DeviceSpec::default_for(DeviceType::WiFi);
        let mut r1 = DeviceRegistry::new();
        deploy(
            &env,
            &mut r1,
            spec,
            FloorId(0),
            DeploymentModel::Coverage,
            7,
        );
        let mut r2 = DeviceRegistry::new();
        deploy(
            &env,
            &mut r2,
            spec,
            FloorId(0),
            DeploymentModel::Coverage,
            7,
        );
        for (a, b) in r1.devices().iter().zip(r2.devices()) {
            assert!(a.position.approx_eq(b.position));
        }
    }

    #[test]
    fn zero_count_is_empty() {
        let env = env();
        let mut reg = DeviceRegistry::new();
        let spec = DeviceSpec::default_for(DeviceType::WiFi);
        let ids = deploy(
            &env,
            &mut reg,
            spec,
            FloorId(0),
            DeploymentModel::Coverage,
            0,
        );
        assert!(ids.is_empty());
        assert!(reg.is_empty());
    }

    #[test]
    fn empty_registry_coverage_is_zero() {
        let env = env();
        let reg = DeviceRegistry::new();
        let mut rng = StdRng::seed_from_u64(3);
        let stats = coverage_fraction(&env, &reg, FloorId(0), 500, &mut rng);
        assert_eq!(stats.covered_fraction, 0.0);
        assert_eq!(stats.trilateration_ready_fraction, 0.0);
    }
}
