//! Simple polygons: the footprint of every indoor entity.
//!
//! Partitions, rooms, hallways, obstacles and staircase footprints are all
//! simple polygons. Irregular partitions are later decomposed into balanced
//! cells (paper §4.1) using [`Polygon::split_by_line`] and
//! [`Polygon::triangulate`].

use rand::Rng;

use crate::bbox::Aabb;
use crate::point::{orient, Orientation, Point, Vec2, EPS};
use crate::segment::Segment;

/// A simple polygon stored as a ring of vertices without a repeated closing
/// vertex. Construction normalizes orientation to counter-clockwise.
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    ring: Vec<Point>,
}

/// Errors from polygon construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolygonError {
    /// Fewer than three vertices.
    TooFewVertices,
    /// All vertices collinear — the ring encloses no area.
    ZeroArea,
    /// A vertex coordinate was NaN or infinite.
    NonFinite,
}

impl std::fmt::Display for PolygonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolygonError::TooFewVertices => write!(f, "polygon needs at least 3 vertices"),
            PolygonError::ZeroArea => write!(f, "polygon ring encloses no area"),
            PolygonError::NonFinite => write!(f, "polygon vertex is not finite"),
        }
    }
}

impl std::error::Error for PolygonError {}

impl Polygon {
    /// Build a polygon from a vertex ring. Duplicated consecutive vertices and
    /// a repeated closing vertex are removed; orientation is normalized to
    /// counter-clockwise.
    pub fn new(mut ring: Vec<Point>) -> Result<Self, PolygonError> {
        if ring.iter().any(|p| !p.is_finite()) {
            return Err(PolygonError::NonFinite);
        }
        // Drop an explicit closing vertex.
        if ring.len() >= 2 && ring.first().unwrap().approx_eq(*ring.last().unwrap()) {
            ring.pop();
        }
        // Drop consecutive duplicates.
        ring.dedup_by(|a, b| a.approx_eq(*b));
        if ring.len() < 3 {
            return Err(PolygonError::TooFewVertices);
        }
        let poly = Polygon { ring };
        let area = poly.signed_area();
        if area.abs() <= EPS {
            return Err(PolygonError::ZeroArea);
        }
        if area < 0.0 {
            let mut r = poly.ring;
            r.reverse();
            Ok(Polygon { ring: r })
        } else {
            Ok(poly)
        }
    }

    /// Axis-aligned rectangle `[x0, x1] × [y0, y1]`.
    pub fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Polygon::new(vec![
            Point::new(x0.min(x1), y0.min(y1)),
            Point::new(x0.max(x1), y0.min(y1)),
            Point::new(x0.max(x1), y0.max(y1)),
            Point::new(x0.min(x1), y0.max(y1)),
        ])
        .expect("rectangle with positive area")
    }

    /// Regular n-gon around `center`.
    pub fn regular(center: Point, radius: f64, n: usize) -> Result<Self, PolygonError> {
        if n < 3 {
            return Err(PolygonError::TooFewVertices);
        }
        let ring = (0..n)
            .map(|i| {
                let theta = 2.0 * std::f64::consts::PI * (i as f64) / (n as f64);
                Point::new(
                    center.x + radius * theta.cos(),
                    center.y + radius * theta.sin(),
                )
            })
            .collect();
        Polygon::new(ring)
    }

    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.ring
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Edges of the ring, in order, closing back to the first vertex.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.ring.len();
        (0..n).map(move |i| Segment::new(self.ring[i], self.ring[(i + 1) % n]))
    }

    /// Signed area: positive for counter-clockwise rings (always, after
    /// construction).
    pub fn signed_area(&self) -> f64 {
        let n = self.ring.len();
        let mut s = 0.0;
        for i in 0..n {
            let p = self.ring[i];
            let q = self.ring[(i + 1) % n];
            s += p.x * q.y - q.x * p.y;
        }
        s / 2.0
    }

    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    pub fn perimeter(&self) -> f64 {
        self.edges().map(|e| e.length()).sum()
    }

    /// Area centroid.
    pub fn centroid(&self) -> Point {
        let n = self.ring.len();
        let mut cx = 0.0;
        let mut cy = 0.0;
        let mut a = 0.0;
        for i in 0..n {
            let p = self.ring[i];
            let q = self.ring[(i + 1) % n];
            let w = p.x * q.y - q.x * p.y;
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
            a += w;
        }
        if a.abs() <= EPS {
            // Degenerate: fall back to vertex average.
            let inv = 1.0 / n as f64;
            return Point::new(
                self.ring.iter().map(|p| p.x).sum::<f64>() * inv,
                self.ring.iter().map(|p| p.y).sum::<f64>() * inv,
            );
        }
        Point::new(cx / (3.0 * a), cy / (3.0 * a))
    }

    pub fn bbox(&self) -> Aabb {
        Aabb::from_points(&self.ring)
    }

    /// Point-in-polygon via the crossing-number rule; boundary points count
    /// as inside (a person standing in a doorway is in the room).
    pub fn contains(&self, p: Point) -> bool {
        if self.on_boundary(p) {
            return true;
        }
        let n = self.ring.len();
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let a = self.ring[i];
            let b = self.ring[j];
            if ((a.y > p.y) != (b.y > p.y)) && (p.x < (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x)
            {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// True if `p` lies on the ring within tolerance.
    pub fn on_boundary(&self, p: Point) -> bool {
        self.edges().any(|e| e.dist_to_point(p) <= EPS.sqrt())
    }

    /// Distance from `p` to the polygon (0 when inside).
    pub fn dist_to_point(&self, p: Point) -> f64 {
        if self.contains(p) {
            0.0
        } else {
            self.boundary_dist(p)
        }
    }

    /// Distance from `p` to the ring (positive even when inside).
    pub fn boundary_dist(&self, p: Point) -> f64 {
        self.edges()
            .map(|e| e.dist_to_point(p))
            .fold(f64::INFINITY, f64::min)
    }

    /// True if every interior angle turns the same way.
    pub fn is_convex(&self) -> bool {
        let n = self.ring.len();
        let mut saw = Orientation::Collinear;
        for i in 0..n {
            let o = orient(self.ring[i], self.ring[(i + 1) % n], self.ring[(i + 2) % n]);
            if o == Orientation::Collinear {
                continue;
            }
            if saw == Orientation::Collinear {
                saw = o;
            } else if o != saw {
                return false;
            }
        }
        true
    }

    /// Closest vertex index to `p`.
    pub fn closest_vertex(&self, p: Point) -> usize {
        let mut best = 0;
        let mut bd = f64::INFINITY;
        for (i, v) in self.ring.iter().enumerate() {
            let d = v.dist2(p);
            if d < bd {
                bd = d;
                best = i;
            }
        }
        best
    }

    /// Translate all vertices by `v`.
    pub fn translated(&self, v: Vec2) -> Polygon {
        Polygon {
            ring: self.ring.iter().map(|&p| p + v).collect(),
        }
    }

    /// Shrink the polygon towards its centroid by factor `f ∈ (0, 1]`.
    /// Cheap stand-in for a proper inward offset; adequate for placing
    /// devices "close to the wall but inside" and similar toolkit needs.
    pub fn scaled_about_centroid(&self, f: f64) -> Polygon {
        let c = self.centroid();
        Polygon {
            ring: self.ring.iter().map(|&p| c + (p - c) * f).collect(),
        }
    }

    /// Ear-clipping triangulation. Returns triangles as vertex triples.
    /// O(n²), fine for building footprints (n is tens of vertices).
    pub fn triangulate(&self) -> Vec<[Point; 3]> {
        let mut idx: Vec<usize> = (0..self.ring.len()).collect();
        let mut tris = Vec::with_capacity(self.ring.len().saturating_sub(2));
        let ring = &self.ring;
        let mut guard = 0usize;
        while idx.len() > 3 {
            let n = idx.len();
            let mut clipped = false;
            for k in 0..n {
                let ia = idx[(k + n - 1) % n];
                let ib = idx[k];
                let ic = idx[(k + 1) % n];
                let (a, b, c) = (ring[ia], ring[ib], ring[ic]);
                if orient(a, b, c) != Orientation::CounterClockwise {
                    continue; // reflex or collinear vertex: not an ear tip
                }
                let any_inside = idx
                    .iter()
                    .any(|&j| j != ia && j != ib && j != ic && point_in_triangle(ring[j], a, b, c));
                if any_inside {
                    continue;
                }
                tris.push([a, b, c]);
                idx.remove(k);
                clipped = true;
                break;
            }
            if !clipped {
                // Numerically stuck (nearly-degenerate ring); fan the rest.
                guard += 1;
                if guard > 2 {
                    break;
                }
                for k in 1..idx.len() - 1 {
                    tris.push([ring[idx[0]], ring[idx[k]], ring[idx[k + 1]]]);
                }
                return tris;
            }
        }
        if idx.len() == 3 {
            tris.push([ring[idx[0]], ring[idx[1]], ring[idx[2]]]);
        }
        tris
    }

    /// Sample a point uniformly from the polygon interior.
    ///
    /// Triangulates once per call; callers that sample in bulk should use
    /// [`PolygonSampler`].
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        PolygonSampler::new(self).sample(rng)
    }

    /// Clip the polygon by the half-plane on the left of the directed line
    /// `a → b` (Sutherland–Hodgman step). Returns `None` when the result is
    /// empty or degenerate.
    pub fn clip_half_plane(&self, a: Point, b: Point) -> Option<Polygon> {
        let mut out: Vec<Point> = Vec::with_capacity(self.ring.len() + 4);
        let n = self.ring.len();
        let side = |p: Point| a.to(b).cross(a.to(p));
        for i in 0..n {
            let cur = self.ring[i];
            let nxt = self.ring[(i + 1) % n];
            let sc = side(cur);
            let sn = side(nxt);
            if sc >= -EPS {
                out.push(cur);
            }
            if (sc > EPS && sn < -EPS) || (sc < -EPS && sn > EPS) {
                let seg = Segment::new(cur, nxt);
                let line = Segment::new(a, b);
                let r = seg.direction();
                let s = line.direction();
                let denom = r.cross(s);
                if denom.abs() > EPS {
                    let t = cur.to(a).cross(s) / denom;
                    out.push(seg.at(t.clamp(0.0, 1.0)));
                }
            }
        }
        Polygon::new(out).ok()
    }

    /// Split by the infinite line through `a → b`; returns (left, right)
    /// pieces where present.
    pub fn split_by_line(&self, a: Point, b: Point) -> (Option<Polygon>, Option<Polygon>) {
        let left = self.clip_half_plane(a, b);
        let right = self.clip_half_plane(b, a);
        (left, right)
    }

    /// Split by the vertical line `x = x0`.
    pub fn split_vertical(&self, x0: f64) -> (Option<Polygon>, Option<Polygon>) {
        // Left of the upward line is x < x0.
        let (l, r) = self.split_by_line(Point::new(x0, 0.0), Point::new(x0, 1.0));
        (l, r)
    }

    /// Split by the horizontal line `y = y0`.
    pub fn split_horizontal(&self, y0: f64) -> (Option<Polygon>, Option<Polygon>) {
        let (l, r) = self.split_by_line(Point::new(0.0, y0), Point::new(1.0, y0));
        (l, r)
    }

    /// Aspect ratio of the bounding box (long side / short side, ≥ 1).
    pub fn bbox_aspect(&self) -> f64 {
        let b = self.bbox();
        let w = b.width().max(EPS);
        let h = b.height().max(EPS);
        (w / h).max(h / w)
    }
}

fn point_in_triangle(p: Point, a: Point, b: Point, c: Point) -> bool {
    let d1 = a.to(b).cross(a.to(p));
    let d2 = b.to(c).cross(b.to(p));
    let d3 = c.to(a).cross(c.to(p));
    let has_neg = d1 < -EPS || d2 < -EPS || d3 < -EPS;
    let has_pos = d1 > EPS || d2 > EPS || d3 > EPS;
    !(has_neg && has_pos)
}

/// Precomputed triangulation for repeated uniform sampling from one polygon.
pub struct PolygonSampler {
    tris: Vec<[Point; 3]>,
    cumulative: Vec<f64>,
    total: f64,
}

impl PolygonSampler {
    pub fn new(poly: &Polygon) -> Self {
        let tris = poly.triangulate();
        let mut cumulative = Vec::with_capacity(tris.len());
        let mut total = 0.0;
        for t in &tris {
            total += triangle_area(t);
            cumulative.push(total);
        }
        PolygonSampler {
            tris,
            cumulative,
            total,
        }
    }

    /// Uniform point in the polygon.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        if self.tris.is_empty() || self.total <= 0.0 {
            return Point::ORIGIN;
        }
        let target = rng.gen::<f64>() * self.total;
        let idx = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&target).unwrap_or(std::cmp::Ordering::Equal))
        {
            Ok(i) => i,
            Err(i) => i.min(self.tris.len() - 1),
        };
        let [a, b, c] = self.tris[idx];
        // Uniform barycentric sample.
        let mut u = rng.gen::<f64>();
        let mut v = rng.gen::<f64>();
        if u + v > 1.0 {
            u = 1.0 - u;
            v = 1.0 - v;
        }
        Point::new(
            a.x + u * (b.x - a.x) + v * (c.x - a.x),
            a.y + u * (b.y - a.y) + v * (c.y - a.y),
        )
    }
}

fn triangle_area(t: &[Point; 3]) -> f64 {
    (t[0].to(t[1]).cross(t[0].to(t[2])) / 2.0).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lshape() -> Polygon {
        // 4x4 square minus its top-right 2x2 quadrant.
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 2.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 4.0),
            Point::new(0.0, 4.0),
        ])
        .unwrap()
    }

    #[test]
    fn construction_rejects_bad_rings() {
        assert_eq!(
            Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]).unwrap_err(),
            PolygonError::TooFewVertices
        );
        assert_eq!(
            Polygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0)
            ])
            .unwrap_err(),
            PolygonError::ZeroArea
        );
        assert_eq!(
            Polygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(f64::NAN, 0.0),
                Point::new(1.0, 1.0)
            ])
            .unwrap_err(),
            PolygonError::NonFinite
        );
    }

    #[test]
    fn orientation_normalized_to_ccw() {
        let cw = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 0.0),
        ])
        .unwrap();
        assert!(cw.signed_area() > 0.0);
    }

    #[test]
    fn rect_properties() {
        let r = Polygon::rect(1.0, 2.0, 5.0, 4.0);
        assert!((r.area() - 8.0).abs() < EPS);
        assert!((r.perimeter() - 12.0).abs() < EPS);
        assert!(r.centroid().approx_eq(Point::new(3.0, 3.0)));
        assert!(r.is_convex());
        assert!(r.contains(Point::new(3.0, 3.0)));
        assert!(r.contains(Point::new(1.0, 2.0))); // corner counts
        assert!(!r.contains(Point::new(0.0, 0.0)));
    }

    #[test]
    fn lshape_properties() {
        let l = lshape();
        assert!((l.area() - 12.0).abs() < 1e-6);
        assert!(!l.is_convex());
        assert!(l.contains(Point::new(1.0, 3.0)));
        assert!(!l.contains(Point::new(3.0, 3.0))); // the notch
    }

    #[test]
    fn triangulation_covers_area() {
        for poly in [Polygon::rect(0.0, 0.0, 3.0, 2.0), lshape()] {
            let tris = poly.triangulate();
            let sum: f64 = tris.iter().map(triangle_area).sum();
            assert!(
                (sum - poly.area()).abs() < 1e-6,
                "triangulation area {sum} != polygon area {}",
                poly.area()
            );
            assert_eq!(tris.len(), poly.len() - 2);
        }
    }

    #[test]
    fn sampling_stays_inside() {
        let l = lshape();
        let mut rng = StdRng::seed_from_u64(7);
        let sampler = PolygonSampler::new(&l);
        for _ in 0..500 {
            let p = sampler.sample(&mut rng);
            assert!(l.contains(p), "sampled point {p} escaped the polygon");
        }
    }

    #[test]
    fn sampling_is_roughly_uniform_between_halves() {
        // The L-shape bottom slab (y<2, area 8) vs upper arm (area 4).
        let l = lshape();
        let mut rng = StdRng::seed_from_u64(42);
        let sampler = PolygonSampler::new(&l);
        let n = 6000;
        let below = (0..n).filter(|_| sampler.sample(&mut rng).y < 2.0).count();
        let frac = below as f64 / n as f64;
        assert!((frac - 2.0 / 3.0).abs() < 0.04, "bottom fraction {frac}");
    }

    #[test]
    fn split_vertical_partitions_area() {
        let r = Polygon::rect(0.0, 0.0, 4.0, 2.0);
        let (l, rt) = r.split_vertical(1.0);
        let (l, rt) = (l.unwrap(), rt.unwrap());
        assert!((l.area() - 2.0).abs() < 1e-6);
        assert!((rt.area() - 6.0).abs() < 1e-6);
        assert!((l.area() + rt.area() - r.area()).abs() < 1e-6);
    }

    #[test]
    fn split_misses_polygon_entirely() {
        let r = Polygon::rect(0.0, 0.0, 1.0, 1.0);
        let (l, rt) = r.split_vertical(5.0);
        assert!(l.is_some());
        assert!(rt.is_none());
        assert!((l.unwrap().area() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn split_lshape_by_horizontal() {
        let l = lshape();
        let (below, above) = l.split_horizontal(2.0);
        // Below y=2: 4x2 slab (area 8); above: 2x2 arm (area 4).
        // split_horizontal's "left of a→b (pointing +x)" is y > 2.
        let above_piece = below.unwrap();
        let below_piece = above.unwrap();
        let (small, big) = if above_piece.area() < below_piece.area() {
            (above_piece, below_piece)
        } else {
            (below_piece, above_piece)
        };
        assert!((small.area() - 4.0).abs() < 1e-6);
        assert!((big.area() - 8.0).abs() < 1e-6);
    }

    #[test]
    fn regular_polygon_area_converges_to_circle() {
        let p = Polygon::regular(Point::new(0.0, 0.0), 1.0, 256).unwrap();
        assert!((p.area() - std::f64::consts::PI).abs() < 1e-3);
        assert!(p.is_convex());
    }

    #[test]
    fn boundary_distance() {
        let r = Polygon::rect(0.0, 0.0, 2.0, 2.0);
        assert!((r.boundary_dist(Point::new(1.0, 1.0)) - 1.0).abs() < EPS);
        assert!((r.dist_to_point(Point::new(3.0, 1.0)) - 1.0).abs() < EPS);
        assert_eq!(r.dist_to_point(Point::new(1.0, 1.0)), 0.0);
    }

    #[test]
    fn scaled_about_centroid_shrinks() {
        let r = Polygon::rect(0.0, 0.0, 2.0, 2.0);
        let s = r.scaled_about_centroid(0.5);
        assert!((s.area() - 1.0).abs() < 1e-9);
        assert!(s.centroid().approx_eq(r.centroid()));
    }

    #[test]
    fn bbox_aspect() {
        assert!((Polygon::rect(0.0, 0.0, 4.0, 1.0).bbox_aspect() - 4.0).abs() < 1e-9);
        assert!((Polygon::rect(0.0, 0.0, 2.0, 2.0).bbox_aspect() - 1.0).abs() < 1e-9);
    }
}
