//! Bulk-loaded R-tree (Sort-Tile-Recursive packing).
//!
//! Static building geometry — partitions, walls, doors — is indexed once
//! after DBI processing (paper §4.1 "the resultant partitions are indexed by
//! a spatial index in order to support the indoor distance computations")
//! and then queried heavily during generation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::bbox::Aabb;
use crate::point::Point;

const NODE_CAPACITY: usize = 8;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        bounds: Aabb,
        items: Vec<(u32, Aabb)>,
    },
    Inner {
        bounds: Aabb,
        children: Vec<Node>,
    },
}

impl Node {
    fn bounds(&self) -> Aabb {
        match self {
            Node::Leaf { bounds, .. } | Node::Inner { bounds, .. } => *bounds,
        }
    }
}

/// An immutable R-tree over `(id, bbox)` entries.
#[derive(Debug, Clone)]
pub struct RTree {
    root: Option<Node>,
    len: usize,
}

impl RTree {
    /// Bulk-load from entries using STR packing.
    pub fn bulk_load(mut entries: Vec<(u32, Aabb)>) -> Self {
        let len = entries.len();
        if entries.is_empty() {
            return RTree { root: None, len: 0 };
        }
        // Sort by center x, tile into vertical slices, sort each by center y.
        entries.sort_by(|a, b| cmp_f64(a.1.center().x, b.1.center().x));
        let leaf_count = len.div_ceil(NODE_CAPACITY);
        let slice_count = (leaf_count as f64).sqrt().ceil() as usize;
        let slice_size = len.div_ceil(slice_count);
        let mut leaves: Vec<Node> = Vec::with_capacity(leaf_count);
        for slice in entries.chunks(slice_size.max(1)) {
            let mut slice = slice.to_vec();
            slice.sort_by(|a, b| cmp_f64(a.1.center().y, b.1.center().y));
            for chunk in slice.chunks(NODE_CAPACITY) {
                let bounds = chunk.iter().fold(Aabb::empty(), |b, (_, e)| b.union(e));
                leaves.push(Node::Leaf {
                    bounds,
                    items: chunk.to_vec(),
                });
            }
        }
        let root = Self::build_upward(leaves);
        RTree {
            root: Some(root),
            len,
        }
    }

    fn build_upward(mut nodes: Vec<Node>) -> Node {
        while nodes.len() > 1 {
            let mut parents = Vec::with_capacity(nodes.len().div_ceil(NODE_CAPACITY));
            nodes.sort_by(|a, b| cmp_f64(a.bounds().center().x, b.bounds().center().x));
            for chunk in nodes.chunks(NODE_CAPACITY) {
                let bounds = chunk
                    .iter()
                    .fold(Aabb::empty(), |b, n| b.union(&n.bounds()));
                parents.push(Node::Inner {
                    bounds,
                    children: chunk.to_vec(),
                });
            }
            nodes = parents;
        }
        nodes.pop().expect("non-empty node list")
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Ids of entries whose boxes intersect `query`.
    pub fn query_bbox(&self, query: &Aabb) -> Vec<u32> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            let mut stack = vec![root];
            while let Some(node) = stack.pop() {
                match node {
                    Node::Leaf { bounds, items } => {
                        if bounds.intersects(query) {
                            out.extend(
                                items
                                    .iter()
                                    .filter(|(_, b)| b.intersects(query))
                                    .map(|(i, _)| *i),
                            );
                        }
                    }
                    Node::Inner { bounds, children } => {
                        if bounds.intersects(query) {
                            stack.extend(children.iter());
                        }
                    }
                }
            }
        }
        out
    }

    /// Ids of entries containing `p`.
    pub fn query_point(&self, p: Point) -> Vec<u32> {
        self.query_bbox(&Aabb::from_point(p))
    }

    /// `k` nearest entries to `p` by box distance, as `(id, distance)` sorted
    /// ascending. Best-first search over the tree.
    pub fn nearest(&self, p: Point, k: usize) -> Vec<(u32, f64)> {
        let mut out = Vec::with_capacity(k);
        let Some(root) = &self.root else {
            return out;
        };
        if k == 0 {
            return out;
        }
        let mut heap: BinaryHeap<HeapEntry<'_>> = BinaryHeap::new();
        heap.push(HeapEntry {
            dist: root.bounds().dist_to_point(p),
            kind: Kind::Node(root),
        });
        while let Some(HeapEntry { dist, kind }) = heap.pop() {
            match kind {
                Kind::Node(Node::Inner { children, .. }) => {
                    for c in children {
                        heap.push(HeapEntry {
                            dist: c.bounds().dist_to_point(p),
                            kind: Kind::Node(c),
                        });
                    }
                }
                Kind::Node(Node::Leaf { items, .. }) => {
                    for (id, b) in items {
                        heap.push(HeapEntry {
                            dist: b.dist_to_point(p),
                            kind: Kind::Item(*id),
                        });
                    }
                }
                Kind::Item(id) => {
                    out.push((id, dist));
                    if out.len() == k {
                        break;
                    }
                }
            }
        }
        out
    }
}

enum Kind<'a> {
    Node(&'a Node),
    Item(u32),
}

struct HeapEntry<'a> {
    dist: f64,
    kind: Kind<'a>,
}

impl PartialEq for HeapEntry<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for HeapEntry<'_> {}
impl PartialOrd for HeapEntry<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance.
        cmp_f64(other.dist, self.dist)
    }
}

fn cmp_f64(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or(Ordering::Equal)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_entries(n: usize) -> Vec<(u32, Aabb)> {
        // n×n unit boxes at integer coordinates.
        let mut v = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let id = (i * n + j) as u32;
                let min = Point::new(i as f64 * 2.0, j as f64 * 2.0);
                v.push((id, Aabb::new(min, Point::new(min.x + 1.0, min.y + 1.0))));
            }
        }
        v
    }

    #[test]
    fn empty_tree() {
        let t = RTree::bulk_load(vec![]);
        assert!(t.is_empty());
        assert!(t.query_point(Point::new(0.0, 0.0)).is_empty());
        assert!(t.nearest(Point::new(0.0, 0.0), 3).is_empty());
    }

    #[test]
    fn point_query_finds_exact_box() {
        let t = RTree::bulk_load(grid_entries(10));
        let hits = t.query_point(Point::new(4.5, 6.5));
        // Box with i=2, j=3 covers [4,5]x[6,7].
        assert_eq!(hits, vec![23]);
    }

    #[test]
    fn bbox_query_matches_brute_force() {
        let entries = grid_entries(12);
        let t = RTree::bulk_load(entries.clone());
        let q = Aabb::new(Point::new(3.0, 3.0), Point::new(9.0, 7.0));
        let mut got = t.query_bbox(&q);
        got.sort_unstable();
        let mut want: Vec<u32> = entries
            .iter()
            .filter(|(_, b)| b.intersects(&q))
            .map(|(i, _)| *i)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn nearest_matches_brute_force() {
        let entries = grid_entries(8);
        let t = RTree::bulk_load(entries.clone());
        let p = Point::new(7.3, 3.9);
        let got = t.nearest(p, 5);
        assert_eq!(got.len(), 5);
        let mut brute: Vec<(u32, f64)> = entries
            .iter()
            .map(|(i, b)| (*i, b.dist_to_point(p)))
            .collect();
        brute.sort_by(|a, b| cmp_f64(a.1, b.1));
        for (i, (_, d)) in got.iter().enumerate() {
            assert!(
                (d - brute[i].1).abs() < 1e-9,
                "k={i}: got dist {d}, brute {}",
                brute[i].1
            );
        }
        // Distances are sorted ascending.
        for w in got.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-12);
        }
    }

    #[test]
    fn nearest_k_larger_than_len() {
        let t = RTree::bulk_load(grid_entries(2));
        let got = t.nearest(Point::new(0.0, 0.0), 100);
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn single_entry() {
        let t = RTree::bulk_load(vec![(
            9,
            Aabb::new(Point::new(1.0, 1.0), Point::new(2.0, 2.0)),
        )]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.nearest(Point::new(0.0, 0.0), 1)[0].0, 9);
        assert_eq!(t.query_point(Point::new(1.5, 1.5)), vec![9]);
    }
}
