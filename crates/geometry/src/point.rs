//! Planar points and vectors.
//!
//! All Vita geometry is metric: coordinates are metres in a per-floor local
//! frame. Elevation is carried separately ([`Point3`]) only where the paper
//! needs it (staircase boundary vertices, §4.1).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Tolerance used by approximate comparisons throughout the geometry kernel.
pub const EPS: f64 = 1e-9;

/// A point in the plane (metres).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

/// A displacement in the plane (metres).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    pub x: f64,
    pub y: f64,
}

/// A point in 3-space; used for staircase boundary vertices where the floor
/// elevation matters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Point {
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: Point) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (cheaper when only comparing).
    #[inline]
    pub fn dist2(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Vector from `self` to `other`.
    #[inline]
    pub fn to(&self, other: Point) -> Vec2 {
        Vec2 {
            x: other.x - self.x,
            y: other.y - self.y,
        }
    }

    /// Linear interpolation: `t = 0` is `self`, `t = 1` is `other`.
    #[inline]
    pub fn lerp(&self, other: Point, t: f64) -> Point {
        Point {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
        }
    }

    /// Midpoint of the segment `self..other`.
    #[inline]
    pub fn midpoint(&self, other: Point) -> Point {
        self.lerp(other, 0.5)
    }

    /// Approximate equality within [`EPS`].
    #[inline]
    pub fn approx_eq(&self, other: Point) -> bool {
        (self.x - other.x).abs() <= EPS && (self.y - other.y).abs() <= EPS
    }

    /// Both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Vec2 {
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    #[inline]
    pub fn dot(&self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    #[inline]
    pub fn cross(&self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    #[inline]
    pub fn norm(&self) -> f64 {
        self.dot(*self).sqrt()
    }

    #[inline]
    pub fn norm2(&self) -> f64 {
        self.dot(*self)
    }

    /// Unit vector in the same direction; `None` for the zero vector.
    pub fn normalized(&self) -> Option<Vec2> {
        let n = self.norm();
        if n <= EPS {
            None
        } else {
            Some(Vec2 {
                x: self.x / n,
                y: self.y / n,
            })
        }
    }

    /// Perpendicular vector (rotated +90°).
    #[inline]
    pub fn perp(&self) -> Vec2 {
        Vec2 {
            x: -self.y,
            y: self.x,
        }
    }

    /// Angle of the vector in radians, in `(-π, π]`.
    #[inline]
    pub fn angle(&self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Rotate by `theta` radians counter-clockwise.
    pub fn rotated(&self, theta: f64) -> Vec2 {
        let (s, c) = theta.sin_cos();
        Vec2 {
            x: self.x * c - self.y * s,
            y: self.x * s + self.y * c,
        }
    }
}

impl Point3 {
    #[inline]
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Point3 { x, y, z }
    }

    /// Drop elevation.
    #[inline]
    pub fn xy(&self) -> Point {
        Point {
            x: self.x,
            y: self.y,
        }
    }

    #[inline]
    pub fn dist(&self, other: Point3) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }
}

/// Orientation of the ordered triple `(a, b, c)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    Clockwise,
    CounterClockwise,
    Collinear,
}

/// Robust-enough orientation predicate for toolkit-scale inputs.
pub fn orient(a: Point, b: Point, c: Point) -> Orientation {
    let v = a.to(b).cross(a.to(c));
    if v > EPS {
        Orientation::CounterClockwise
    } else if v < -EPS {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

impl Add<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn add(self, v: Vec2) -> Point {
        Point {
            x: self.x + v.x,
            y: self.y + v.y,
        }
    }
}

impl AddAssign<Vec2> for Point {
    #[inline]
    fn add_assign(&mut self, v: Vec2) {
        self.x += v.x;
        self.y += v.y;
    }
}

impl Sub<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, v: Vec2) -> Point {
        Point {
            x: self.x - v.x,
            y: self.y - v.y,
        }
    }
}

impl Sub<Point> for Point {
    type Output = Vec2;
    #[inline]
    fn sub(self, p: Point) -> Vec2 {
        Vec2 {
            x: self.x - p.x,
            y: self.y - p.y,
        }
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, o: Vec2) -> Vec2 {
        Vec2 {
            x: self.x + o.x,
            y: self.y + o.y,
        }
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, o: Vec2) {
        self.x += o.x;
        self.y += o.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, o: Vec2) -> Vec2 {
        Vec2 {
            x: self.x - o.x,
            y: self.y - o.y,
        }
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, o: Vec2) {
        self.x -= o.x;
        self.y -= o.y;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, s: f64) -> Vec2 {
        Vec2 {
            x: self.x * s,
            y: self.y * s,
        }
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, s: f64) -> Vec2 {
        Vec2 {
            x: self.x / s,
            y: self.y / s,
        }
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2 {
            x: -self.x,
            y: -self.y,
        }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl fmt::Display for Point3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3}, {:.3})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_and_dist2_agree() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.dist(b) - 5.0).abs() < EPS);
        assert!((a.dist2(b) - 25.0).abs() < EPS);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, 6.0);
        assert!(a.lerp(b, 0.0).approx_eq(a));
        assert!(a.lerp(b, 1.0).approx_eq(b));
        assert!(a.midpoint(b).approx_eq(Point::new(2.0, 4.0)));
    }

    #[test]
    fn cross_sign_encodes_turn_direction() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let left = Point::new(1.0, 1.0);
        let right = Point::new(1.0, -1.0);
        assert_eq!(orient(a, b, left), Orientation::CounterClockwise);
        assert_eq!(orient(a, b, right), Orientation::Clockwise);
        assert_eq!(orient(a, b, Point::new(2.0, 0.0)), Orientation::Collinear);
    }

    #[test]
    fn vector_algebra() {
        let v = Vec2::new(3.0, 4.0);
        assert!((v.norm() - 5.0).abs() < EPS);
        let u = v.normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < EPS);
        assert!((v.perp().dot(v)).abs() < EPS);
        assert!(Vec2::ZERO.normalized().is_none());
    }

    #[test]
    fn rotation_preserves_norm() {
        let v = Vec2::new(2.0, 1.0);
        let r = v.rotated(std::f64::consts::FRAC_PI_2);
        assert!((r.norm() - v.norm()).abs() < EPS);
        assert!((r.x + 1.0).abs() < 1e-9 && (r.y - 2.0).abs() < 1e-9);
    }

    #[test]
    fn point3_projects_to_plane() {
        let p = Point3::new(1.0, 2.0, 7.0);
        assert!(p.xy().approx_eq(Point::new(1.0, 2.0)));
        assert!((p.dist(Point3::new(1.0, 2.0, 4.0)) - 3.0).abs() < EPS);
    }
}
