//! Uniform grid spatial index.
//!
//! Cheap, rebuild-friendly index used for dynamic data (moving objects,
//! devices). Static building geometry uses the bulk-loaded [`crate::rtree`].

use crate::bbox::Aabb;
use crate::point::Point;

/// A uniform grid over a bounded domain, mapping cells to item ids.
#[derive(Debug, Clone)]
pub struct GridIndex {
    domain: Aabb,
    cell: f64,
    cols: usize,
    rows: usize,
    cells: Vec<Vec<u32>>,
    entries: Vec<(u32, Aabb)>,
}

impl GridIndex {
    /// Create a grid covering `domain` with roughly `cell`-sized cells.
    /// The cell size is clamped so the grid has at least one cell.
    pub fn new(domain: Aabb, cell: f64) -> Self {
        let cell = if cell.is_finite() && cell > 1e-6 {
            cell
        } else {
            1.0
        };
        let cols = ((domain.width() / cell).ceil() as usize).max(1);
        let rows = ((domain.height() / cell).ceil() as usize).max(1);
        GridIndex {
            domain,
            cell,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
            entries: Vec::new(),
        }
    }

    pub fn domain(&self) -> Aabb {
        self.domain
    }

    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn col_of(&self, x: f64) -> usize {
        (((x - self.domain.min.x) / self.cell).floor() as isize).clamp(0, self.cols as isize - 1)
            as usize
    }

    fn row_of(&self, y: f64) -> usize {
        (((y - self.domain.min.y) / self.cell).floor() as isize).clamp(0, self.rows as isize - 1)
            as usize
    }

    fn cell_range(&self, b: &Aabb) -> (usize, usize, usize, usize) {
        (
            self.col_of(b.min.x),
            self.col_of(b.max.x),
            self.row_of(b.min.y),
            self.row_of(b.max.y),
        )
    }

    /// Insert an item with the given bounds; returns its handle (dense index).
    pub fn insert(&mut self, id: u32, bounds: Aabb) {
        let (c0, c1, r0, r1) = self.cell_range(&bounds);
        let slot = self.entries.len() as u32;
        self.entries.push((id, bounds));
        for r in r0..=r1 {
            for c in c0..=c1 {
                self.cells[r * self.cols + c].push(slot);
            }
        }
    }

    /// Insert a point item.
    pub fn insert_point(&mut self, id: u32, p: Point) {
        self.insert(id, Aabb::from_point(p));
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        for c in &mut self.cells {
            c.clear();
        }
        self.entries.clear();
    }

    /// Collect deduplicated slots whose cells overlap the clamped query box.
    fn candidate_slots(&self, q: &Aabb) -> Vec<u32> {
        let Some(q) = q.intersection(&self.domain) else {
            return Vec::new();
        };
        let (c0, c1, r0, r1) = self.cell_range(&q);
        let mut slots = Vec::new();
        for r in r0..=r1 {
            for c in c0..=c1 {
                slots.extend_from_slice(&self.cells[r * self.cols + c]);
            }
        }
        // Sort+dedup costs O(k log k) in the candidate count, instead of an
        // O(n) visited buffer per query.
        slots.sort_unstable();
        slots.dedup();
        slots
    }

    /// Ids of items whose bounds intersect `query`. Deduplicated, unordered.
    pub fn query_bbox(&self, query: &Aabb) -> Vec<u32> {
        self.candidate_slots(query)
            .into_iter()
            .filter(|&s| self.entries[s as usize].1.intersects(query))
            .map(|s| self.entries[s as usize].0)
            .collect()
    }

    /// Ids of items whose bounds are within `radius` of `p`.
    pub fn query_radius(&self, p: Point, radius: f64) -> Vec<u32> {
        let q = Aabb::from_point(p).inflated(radius);
        self.candidate_slots(&q)
            .into_iter()
            .filter(|&s| self.entries[s as usize].1.dist_to_point(p) <= radius)
            .map(|s| self.entries[s as usize].0)
            .collect()
    }

    /// All (id, bounds) entries.
    pub fn entries(&self) -> &[(u32, Aabb)] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> Aabb {
        Aabb::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0))
    }

    #[test]
    fn insert_and_query_points() {
        let mut g = GridIndex::new(domain(), 1.0);
        g.insert_point(1, Point::new(1.5, 1.5));
        g.insert_point(2, Point::new(8.5, 8.5));
        g.insert_point(3, Point::new(1.9, 1.1));
        let near = g.query_bbox(&Aabb::new(Point::new(1.0, 1.0), Point::new(2.0, 2.0)));
        let mut near = near;
        near.sort_unstable();
        assert_eq!(near, vec![1, 3]);
    }

    #[test]
    fn bbox_spanning_cells_found_once() {
        let mut g = GridIndex::new(domain(), 1.0);
        g.insert(7, Aabb::new(Point::new(0.5, 0.5), Point::new(5.5, 5.5)));
        let hits = g.query_bbox(&Aabb::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)));
        assert_eq!(hits, vec![7]);
    }

    #[test]
    fn radius_query_filters_by_distance() {
        let mut g = GridIndex::new(domain(), 2.0);
        g.insert_point(1, Point::new(2.0, 2.0));
        g.insert_point(2, Point::new(6.0, 2.0));
        let hits = g.query_radius(Point::new(2.0, 2.0), 1.5);
        assert_eq!(hits, vec![1]);
        let mut hits = g.query_radius(Point::new(4.0, 2.0), 2.5);
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2]);
    }

    #[test]
    fn query_outside_domain_is_empty() {
        let mut g = GridIndex::new(domain(), 1.0);
        g.insert_point(1, Point::new(5.0, 5.0));
        assert!(g
            .query_bbox(&Aabb::new(Point::new(20.0, 20.0), Point::new(21.0, 21.0)))
            .is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut g = GridIndex::new(domain(), 1.0);
        g.insert_point(1, Point::new(5.0, 5.0));
        assert_eq!(g.len(), 1);
        g.clear();
        assert!(g.is_empty());
        assert!(g.query_radius(Point::new(5.0, 5.0), 1.0).is_empty());
    }

    #[test]
    fn degenerate_cell_size_clamped() {
        let g = GridIndex::new(domain(), 0.0);
        assert!(g.cell_size() > 0.0);
    }

    #[test]
    fn points_outside_domain_clamp_into_edge_cells() {
        let mut g = GridIndex::new(domain(), 1.0);
        g.insert_point(1, Point::new(-5.0, -5.0));
        let hits = g.query_bbox(&Aabb::new(Point::new(-6.0, -6.0), Point::new(0.5, 0.5)));
        assert_eq!(hits, vec![1]);
    }
}
