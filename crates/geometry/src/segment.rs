//! Line segments: intersection predicates, distances and projections.
//!
//! Segments model walls, door sills and object sight-lines. The line-of-sight
//! logic behind the path-loss obstacle term (paper §3.2) is built on
//! [`Segment::intersects`].

use crate::point::{orient, Orientation, Point, Vec2, EPS};

/// A closed line segment between two endpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    pub a: Point,
    pub b: Point,
}

impl Segment {
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    #[inline]
    pub fn length(&self) -> f64 {
        self.a.dist(self.b)
    }

    #[inline]
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }

    #[inline]
    pub fn direction(&self) -> Vec2 {
        self.a.to(self.b)
    }

    /// Point at parameter `t ∈ [0, 1]` along the segment.
    #[inline]
    pub fn at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// True if `p` lies on the segment (within tolerance).
    pub fn contains_point(&self, p: Point) -> bool {
        if orient(self.a, self.b, p) != Orientation::Collinear {
            return false;
        }
        let d = self.direction();
        let t = p.to(self.b).dot(d);
        let s = self.a.to(p).dot(d);
        t >= -EPS && s >= -EPS
    }

    /// Segment-segment intersection test, including touching endpoints and
    /// collinear overlap.
    pub fn intersects(&self, other: &Segment) -> bool {
        let o1 = orient(self.a, self.b, other.a);
        let o2 = orient(self.a, self.b, other.b);
        let o3 = orient(other.a, other.b, self.a);
        let o4 = orient(other.a, other.b, self.b);

        if o1 != o2
            && o3 != o4
            && o1 != Orientation::Collinear
            && o2 != Orientation::Collinear
            && o3 != Orientation::Collinear
            && o4 != Orientation::Collinear
        {
            return true;
        }
        (o1 == Orientation::Collinear && self.contains_point(other.a))
            || (o2 == Orientation::Collinear && self.contains_point(other.b))
            || (o3 == Orientation::Collinear && other.contains_point(self.a))
            || (o4 == Orientation::Collinear && other.contains_point(self.b))
    }

    /// Proper (interior) crossing: the segments cross at a single interior
    /// point of both. Used for wall-crossing counts, where merely grazing a
    /// wall endpoint should not count as passing through the wall.
    pub fn crosses(&self, other: &Segment) -> bool {
        let o1 = orient(self.a, self.b, other.a);
        let o2 = orient(self.a, self.b, other.b);
        let o3 = orient(other.a, other.b, self.a);
        let o4 = orient(other.a, other.b, self.b);
        o1 != o2
            && o3 != o4
            && o1 != Orientation::Collinear
            && o2 != Orientation::Collinear
            && o3 != Orientation::Collinear
            && o4 != Orientation::Collinear
    }

    /// Intersection point of the two supporting lines, if the segments
    /// properly intersect (not collinear overlap).
    pub fn intersection_point(&self, other: &Segment) -> Option<Point> {
        let r = self.direction();
        let s = other.direction();
        let denom = r.cross(s);
        if denom.abs() <= EPS {
            return None;
        }
        let qp = self.a.to(other.a);
        let t = qp.cross(s) / denom;
        let u = qp.cross(r) / denom;
        if (-EPS..=1.0 + EPS).contains(&t) && (-EPS..=1.0 + EPS).contains(&u) {
            Some(self.at(t.clamp(0.0, 1.0)))
        } else {
            None
        }
    }

    /// Closest point on the segment to `p`.
    pub fn closest_point(&self, p: Point) -> Point {
        let d = self.direction();
        let l2 = d.norm2();
        if l2 <= EPS {
            return self.a;
        }
        let t = (self.a.to(p).dot(d) / l2).clamp(0.0, 1.0);
        self.at(t)
    }

    /// Distance from `p` to the segment.
    #[inline]
    pub fn dist_to_point(&self, p: Point) -> f64 {
        self.closest_point(p).dist(p)
    }

    /// Minimum distance between two segments.
    pub fn dist_to_segment(&self, other: &Segment) -> f64 {
        if self.intersects(other) {
            return 0.0;
        }
        self.dist_to_point(other.a)
            .min(self.dist_to_point(other.b))
            .min(other.dist_to_point(self.a))
            .min(other.dist_to_point(self.b))
    }

    /// Outward normal assuming the segment is an edge of a counter-clockwise
    /// polygon ring.
    pub fn outward_normal(&self) -> Option<Vec2> {
        self.direction().normalized().map(|u| Vec2::new(u.y, -u.x))
    }

    /// The segment with endpoints swapped.
    #[inline]
    pub fn reversed(&self) -> Segment {
        Segment {
            a: self.b,
            b: self.a,
        }
    }
}

/// Count how many of `walls` the sight-line `from → to` properly crosses.
///
/// This is the obstacle count feeding `N_ob` in the path-loss model: in paper
/// Fig. 3(a), the line from object `p` to device `d1` crosses walls while the
/// equally long line to `d2` does not, so `d2` measures a stronger RSSI.
pub fn count_crossings(from: Point, to: Point, walls: &[Segment]) -> usize {
    let sight = Segment::new(from, to);
    walls.iter().filter(|w| sight.crosses(w)).count()
}

/// True if no wall properly blocks the line of sight `from → to`.
pub fn line_of_sight(from: Point, to: Point, walls: &[Segment]) -> bool {
    count_crossings(from, to, walls) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn proper_crossing_detected() {
        let s1 = seg(0.0, 0.0, 2.0, 2.0);
        let s2 = seg(0.0, 2.0, 2.0, 0.0);
        assert!(s1.intersects(&s2));
        assert!(s1.crosses(&s2));
        let p = s1.intersection_point(&s2).unwrap();
        assert!(p.approx_eq(Point::new(1.0, 1.0)));
    }

    #[test]
    fn touching_endpoint_is_intersection_but_not_crossing() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(1.0, 0.0, 2.0, 5.0);
        assert!(s1.intersects(&s2));
        assert!(!s1.crosses(&s2));
    }

    #[test]
    fn disjoint_segments() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(0.0, 1.0, 1.0, 1.0);
        assert!(!s1.intersects(&s2));
        assert!(s1.intersection_point(&s2).is_none());
        assert!((s1.dist_to_segment(&s2) - 1.0).abs() < EPS);
    }

    #[test]
    fn collinear_overlap_intersects() {
        let s1 = seg(0.0, 0.0, 2.0, 0.0);
        let s2 = seg(1.0, 0.0, 3.0, 0.0);
        assert!(s1.intersects(&s2));
        assert!(!s1.crosses(&s2));
    }

    #[test]
    fn closest_point_clamps_to_endpoints() {
        let s = seg(0.0, 0.0, 1.0, 0.0);
        assert!(s
            .closest_point(Point::new(-1.0, 1.0))
            .approx_eq(Point::new(0.0, 0.0)));
        assert!(s
            .closest_point(Point::new(2.0, 1.0))
            .approx_eq(Point::new(1.0, 0.0)));
        assert!(s
            .closest_point(Point::new(0.5, 1.0))
            .approx_eq(Point::new(0.5, 0.0)));
        assert!((s.dist_to_point(Point::new(0.5, 2.0)) - 2.0).abs() < EPS);
    }

    #[test]
    fn contains_point_on_and_off() {
        let s = seg(0.0, 0.0, 2.0, 2.0);
        assert!(s.contains_point(Point::new(1.0, 1.0)));
        assert!(s.contains_point(Point::new(0.0, 0.0)));
        assert!(!s.contains_point(Point::new(3.0, 3.0)));
        assert!(!s.contains_point(Point::new(1.0, 0.9)));
    }

    #[test]
    fn wall_crossing_counts_match_fig3_scenario() {
        // Object at origin; d2 east with clear line, d1 west behind two walls.
        let walls = vec![seg(-1.0, -5.0, -1.0, 5.0), seg(-2.0, -5.0, -2.0, 5.0)];
        let p = Point::new(0.0, 0.0);
        let d1 = Point::new(-4.0, 0.0);
        let d2 = Point::new(4.0, 0.0);
        assert_eq!(count_crossings(p, d1, &walls), 2);
        assert_eq!(count_crossings(p, d2, &walls), 0);
        assert!(line_of_sight(p, d2, &walls));
        assert!(!line_of_sight(p, d1, &walls));
    }

    #[test]
    fn degenerate_segment_distance() {
        let s = seg(1.0, 1.0, 1.0, 1.0);
        assert!((s.dist_to_point(Point::new(4.0, 5.0)) - 5.0).abs() < EPS);
    }
}
