//! Axis-aligned bounding boxes.

use crate::point::{Point, EPS};

/// Axis-aligned bounding box (min/max corners).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    pub min: Point,
    pub max: Point,
}

impl Aabb {
    /// Box from two corners in any order.
    pub fn new(a: Point, b: Point) -> Self {
        Aabb {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The empty box: unions as identity, intersects nothing.
    pub fn empty() -> Self {
        Aabb {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Degenerate box containing exactly `p`.
    pub fn from_point(p: Point) -> Self {
        Aabb { min: p, max: p }
    }

    /// Smallest box containing all `points`; empty box for an empty slice.
    pub fn from_points(points: &[Point]) -> Self {
        points.iter().fold(Aabb::empty(), |b, &p| b.expanded_to(p))
    }

    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    pub fn perimeter(&self) -> f64 {
        2.0 * (self.width() + self.height())
    }

    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Box grown to include `p`.
    pub fn expanded_to(&self, p: Point) -> Aabb {
        Aabb {
            min: Point::new(self.min.x.min(p.x), self.min.y.min(p.y)),
            max: Point::new(self.max.x.max(p.x), self.max.y.max(p.y)),
        }
    }

    /// Box grown by `margin` on all sides.
    pub fn inflated(&self, margin: f64) -> Aabb {
        if self.is_empty() {
            return *self;
        }
        Aabb {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        }
    }

    /// Union of two boxes.
    pub fn union(&self, other: &Aabb) -> Aabb {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Aabb {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Intersection of two boxes, if non-empty.
    pub fn intersection(&self, other: &Aabb) -> Option<Aabb> {
        let min = Point::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y));
        let max = Point::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y));
        if min.x <= max.x + EPS && min.y <= max.y + EPS {
            Some(Aabb { min, max })
        } else {
            None
        }
    }

    pub fn intersects(&self, other: &Aabb) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min.x <= other.max.x + EPS
            && other.min.x <= self.max.x + EPS
            && self.min.y <= other.max.y + EPS
            && other.min.y <= self.max.y + EPS
    }

    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.min.x - EPS
            && p.x <= self.max.x + EPS
            && p.y >= self.min.y - EPS
            && p.y <= self.max.y + EPS
    }

    pub fn contains_box(&self, other: &Aabb) -> bool {
        !other.is_empty() && self.contains_point(other.min) && self.contains_point(other.max)
    }

    /// Minimum distance from `p` to the box (0 when inside).
    pub fn dist_to_point(&self, p: Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalizes_corners() {
        let b = Aabb::new(Point::new(3.0, 1.0), Point::new(1.0, 4.0));
        assert_eq!(b.min, Point::new(1.0, 1.0));
        assert_eq!(b.max, Point::new(3.0, 4.0));
        assert!((b.area() - 6.0).abs() < EPS);
        assert!((b.perimeter() - 10.0).abs() < EPS);
    }

    #[test]
    fn empty_box_behaviour() {
        let e = Aabb::empty();
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        let b = Aabb::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        assert_eq!(e.union(&b), b);
        assert!(!e.intersects(&b));
    }

    #[test]
    fn union_and_intersection() {
        let a = Aabb::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let b = Aabb::new(Point::new(1.0, 1.0), Point::new(3.0, 3.0));
        let u = a.union(&b);
        assert_eq!(u, Aabb::new(Point::new(0.0, 0.0), Point::new(3.0, 3.0)));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Aabb::new(Point::new(1.0, 1.0), Point::new(2.0, 2.0)));
        let far = Aabb::new(Point::new(10.0, 10.0), Point::new(11.0, 11.0));
        assert!(a.intersection(&far).is_none());
        assert!(!a.intersects(&far));
    }

    #[test]
    fn containment_and_distance() {
        let b = Aabb::new(Point::new(0.0, 0.0), Point::new(4.0, 4.0));
        assert!(b.contains_point(Point::new(2.0, 2.0)));
        assert!(b.contains_point(Point::new(0.0, 0.0)));
        assert!(!b.contains_point(Point::new(5.0, 2.0)));
        assert_eq!(b.dist_to_point(Point::new(2.0, 2.0)), 0.0);
        assert!((b.dist_to_point(Point::new(7.0, 8.0)) - 5.0).abs() < EPS);
        let inner = Aabb::new(Point::new(1.0, 1.0), Point::new(2.0, 2.0));
        assert!(b.contains_box(&inner));
        assert!(!inner.contains_box(&b));
    }

    #[test]
    fn from_points_and_inflate() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 0.0),
            Point::new(3.0, 2.0),
        ];
        let b = Aabb::from_points(&pts);
        assert_eq!(b.min, Point::new(-2.0, 0.0));
        assert_eq!(b.max, Point::new(3.0, 5.0));
        let g = b.inflated(1.0);
        assert_eq!(g.min, Point::new(-3.0, -1.0));
        assert_eq!(g.max, Point::new(4.0, 6.0));
    }
}
