#![forbid(unsafe_code)]
//! # vita-geometry
//!
//! Planar geometry kernel for the Vita indoor mobility data generator.
//!
//! Everything Vita does — constructing indoor environments from DBI files,
//! decomposing irregular partitions, routing objects, counting the walls a
//! radio signal passes through — reduces to a small set of 2-D primitives and
//! two spatial indexes, which live here:
//!
//! * [`Point`], [`Vec2`], [`Point3`] — points and displacements (metres).
//! * [`Segment`] — walls, door sills, sight-lines; intersection and
//!   line-of-sight predicates ([`line_of_sight`], [`count_crossings`]).
//! * [`Polygon`] — footprints; containment, triangulation, uniform sampling,
//!   half-plane clipping and line splits used by partition decomposition.
//! * [`Aabb`] — bounding boxes.
//! * [`GridIndex`] — rebuild-friendly uniform grid for dynamic data.
//! * [`RTree`] — STR bulk-loaded R-tree for static building geometry.
//!
//! The crate is dependency-light (only `rand`, for polygon sampling) and
//! fully deterministic given a seeded RNG.

pub mod bbox;
pub mod grid;
pub mod point;
pub mod polygon;
pub mod rtree;
pub mod segment;

pub use bbox::Aabb;
pub use grid::GridIndex;
pub use point::{orient, Orientation, Point, Point3, Vec2, EPS};
pub use polygon::{Polygon, PolygonError, PolygonSampler};
pub use rtree::RTree;
pub use segment::{count_crossings, line_of_sight, Segment};
