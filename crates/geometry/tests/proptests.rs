//! Property-based tests for the geometry kernel: the invariants every
//! upper layer silently relies on.

use proptest::prelude::*;

use vita_geometry::{
    count_crossings, Aabb, GridIndex, Point, Polygon, PolygonSampler, RTree, Segment, Vec2,
};

fn pt() -> impl Strategy<Value = Point> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ── points & vectors ────────────────────────────────────────────────

    #[test]
    fn distance_is_a_metric(a in pt(), b in pt(), c in pt()) {
        prop_assert!(a.dist(b) >= 0.0);
        prop_assert!((a.dist(b) - b.dist(a)).abs() < 1e-9);
        prop_assert!(a.dist(c) <= a.dist(b) + b.dist(c) + 1e-9);
        prop_assert!(a.dist(a) < 1e-12);
    }

    #[test]
    fn lerp_stays_on_segment(a in pt(), b in pt(), t in 0.0f64..1.0) {
        let p = a.lerp(b, t);
        let seg = Segment::new(a, b);
        prop_assert!(seg.dist_to_point(p) < 1e-6);
    }

    #[test]
    fn rotation_preserves_norm_and_dot(
        x in -50.0f64..50.0, y in -50.0f64..50.0, theta in -6.3f64..6.3,
    ) {
        let v = Vec2::new(x, y);
        let r = v.rotated(theta);
        prop_assert!((r.norm() - v.norm()).abs() < 1e-6);
    }

    // ── segments ────────────────────────────────────────────────────────

    #[test]
    fn segment_intersection_is_symmetric(a in pt(), b in pt(), c in pt(), d in pt()) {
        let s1 = Segment::new(a, b);
        let s2 = Segment::new(c, d);
        prop_assert_eq!(s1.intersects(&s2), s2.intersects(&s1));
        prop_assert_eq!(s1.crosses(&s2), s2.crosses(&s1));
        // A proper crossing is always an intersection.
        if s1.crosses(&s2) {
            prop_assert!(s1.intersects(&s2));
        }
    }

    #[test]
    fn closest_point_is_on_segment_and_optimal(a in pt(), b in pt(), p in pt()) {
        let seg = Segment::new(a, b);
        let cp = seg.closest_point(p);
        prop_assert!(seg.dist_to_point(cp) < 1e-6);
        // No endpoint is closer.
        prop_assert!(cp.dist(p) <= a.dist(p) + 1e-9);
        prop_assert!(cp.dist(p) <= b.dist(p) + 1e-9);
        // Midpoint is not closer either (convexity check at one sample).
        prop_assert!(cp.dist(p) <= seg.midpoint().dist(p) + 1e-9);
    }

    #[test]
    fn crossing_count_symmetric_in_endpoints(a in pt(), b in pt()) {
        let walls = vec![
            Segment::new(Point::new(0.0, -200.0), Point::new(0.0, 200.0)),
            Segment::new(Point::new(-200.0, 0.0), Point::new(200.0, 0.0)),
        ];
        prop_assert_eq!(count_crossings(a, b, &walls), count_crossings(b, a, &walls));
    }

    // ── boxes ───────────────────────────────────────────────────────────

    #[test]
    fn union_contains_both(a1 in pt(), a2 in pt(), b1 in pt(), b2 in pt()) {
        let a = Aabb::new(a1, a2);
        let b = Aabb::new(b1, b2);
        let u = a.union(&b);
        prop_assert!(u.contains_box(&a));
        prop_assert!(u.contains_box(&b));
        prop_assert!(u.area() + 1e-9 >= a.area().max(b.area()));
    }

    #[test]
    fn intersection_within_both(a1 in pt(), a2 in pt(), b1 in pt(), b2 in pt()) {
        let a = Aabb::new(a1, a2);
        let b = Aabb::new(b1, b2);
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.intersects(&b));
            prop_assert!(i.area() <= a.area() + 1e-9);
            prop_assert!(i.area() <= b.area() + 1e-9);
        }
    }

    #[test]
    fn box_distance_zero_iff_contains(a1 in pt(), a2 in pt(), p in pt()) {
        let b = Aabb::new(a1, a2);
        if b.contains_point(p) {
            prop_assert_eq!(b.dist_to_point(p), 0.0);
        } else {
            prop_assert!(b.dist_to_point(p) > 0.0);
        }
    }

    // ── polygons ────────────────────────────────────────────────────────

    #[test]
    fn rect_contains_its_samples(
        x0 in -50.0f64..50.0, y0 in -50.0f64..50.0,
        w in 0.5f64..40.0, h in 0.5f64..40.0,
        seed in 0u64..500,
    ) {
        use rand::SeedableRng;
        let poly = Polygon::rect(x0, y0, x0 + w, y0 + h);
        let sampler = PolygonSampler::new(&poly);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..10 {
            prop_assert!(poly.contains(sampler.sample(&mut rng)));
        }
    }

    #[test]
    fn split_conserves_area_and_pieces_are_disjointly_contained(
        w in 1.0f64..40.0, h in 1.0f64..40.0, frac in 0.1f64..0.9,
    ) {
        let poly = Polygon::rect(0.0, 0.0, w, h);
        let (l, r) = poly.split_vertical(w * frac);
        let (l, r) = (l.unwrap(), r.unwrap());
        prop_assert!((l.area() + r.area() - poly.area()).abs() < 1e-6);
        // Pieces live inside the original bbox.
        prop_assert!(poly.bbox().contains_box(&l.bbox()));
        prop_assert!(poly.bbox().contains_box(&r.bbox()));
    }

    #[test]
    fn triangulation_area_matches_for_regular_ngons(
        n in 3usize..24, r in 0.5f64..30.0,
    ) {
        let poly = Polygon::regular(Point::new(0.0, 0.0), r, n).unwrap();
        let tri_area: f64 = poly
            .triangulate()
            .iter()
            .map(|t| (t[0].to(t[1]).cross(t[0].to(t[2])) / 2.0).abs())
            .sum();
        prop_assert!((tri_area - poly.area()).abs() < 1e-6 * poly.area());
    }

    #[test]
    fn centroid_inside_convex_polygon(n in 3usize..16, r in 0.5f64..30.0) {
        let poly = Polygon::regular(Point::new(5.0, -3.0), r, n).unwrap();
        prop_assert!(poly.contains(poly.centroid()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // ── spatial indexes vs brute force ──────────────────────────────────

    #[test]
    fn rtree_matches_brute_force(
        pts in proptest::collection::vec(pt(), 1..120),
        q1 in pt(), q2 in pt(),
    ) {
        let entries: Vec<(u32, Aabb)> = pts
            .iter()
            .enumerate()
            .map(|(i, &p)| (i as u32, Aabb::from_point(p)))
            .collect();
        let tree = RTree::bulk_load(entries.clone());
        let q = Aabb::new(q1, q2);
        let mut got = tree.query_bbox(&q);
        got.sort_unstable();
        let mut want: Vec<u32> = entries
            .iter()
            .filter(|(_, b)| b.intersects(&q))
            .map(|(i, _)| *i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);

        // Nearest-1 agrees with linear scan.
        let probe = q1;
        let nearest = tree.nearest(probe, 1);
        let brute = pts
            .iter()
            .map(|p| p.dist(probe))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((nearest[0].1 - brute).abs() < 1e-9);
    }

    #[test]
    fn grid_matches_brute_force(
        pts in proptest::collection::vec(pt(), 1..120),
        center in pt(), radius in 0.5f64..80.0,
    ) {
        let domain = Aabb::new(Point::new(-100.0, -100.0), Point::new(100.0, 100.0));
        let mut grid = GridIndex::new(domain, 7.0);
        for (i, &p) in pts.iter().enumerate() {
            grid.insert_point(i as u32, p);
        }
        let mut got = grid.query_radius(center, radius);
        got.sort_unstable();
        let mut want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dist(center) <= radius)
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
