#![forbid(unsafe_code)]
//! # vita-serve
//!
//! Online query serving over live ingestion: the front-end the VITA paper's
//! demo (§5) implies but never names — consumers of generated mobility data
//! asking questions of the repository *while* the producer layers are still
//! filling it.
//!
//! Two halves:
//!
//! * [`query`] — the typed query surface: a [`QueryRequest`] names one of
//!   the repository's query paths plus a [`vita_storage::RunScope`]
//!   picking all runs or one; a [`QueryService`] executes requests against
//!   a shared [`vita_storage::AnyRepository`] handle and answers with a
//!   [`QueryResponse`]. The service is a cheap clone (one `Arc`), so a
//!   pool of query worker threads can answer concurrently with ingestion
//!   on the same repository.
//! * [`load`] — a closed-feedback ramped load generator: drive a weighted
//!   [`WorkloadSpec`] query mix at a stepped-up request rate
//!   ([`LoadProfile`]: `initial_rps` → `+increment_rps` → `max_rps`),
//!   record achieved throughput and p50/p99/p999 latency per step, and
//!   stop at the first step the service cannot sustain — reporting the
//!   max sustainable RPS ([`RampReport`]).
//!
//! Every query answers from a **prefix-consistent snapshot**: each table
//! read takes that table's read lock (per shard on the sharded backend),
//! so a response never contains a torn batch — it reflects every batch
//! appended before some point and none after.

pub mod load;
pub mod query;

pub use load::{run_fixed, run_ramp, LoadProfile, RampReport, StepReport, WorkloadSpec};
pub use query::{QueryRequest, QueryResponse, QueryService};
