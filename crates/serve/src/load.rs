//! Closed-feedback ramped load generation: step the offered query rate up
//! from [`LoadProfile::initial_rps`] by [`LoadProfile::increment_rps`]
//! until either [`LoadProfile::max_rps`] is reached or the service stops
//! keeping up, and report per-step achieved throughput and latency
//! percentiles.
//!
//! The loop is *closed*: each worker issues its next query only after the
//! previous one returned, pacing against an absolute schedule of
//! `1 / rate` slots (with a bounded catch-up burst after a stall, so a
//! scheduler hiccup doesn't silently lower the offered rate — the
//! coordinated-omission trap). When the service is saturated the pacing
//! slack vanishes, achieved RPS falls below the offered rate, and the
//! ramp stops at the first step whose achieved rate drops under
//! [`LoadProfile::satisfaction`] × target — the step-up protocol of
//! throughput benchmarks like YCSB's target-rate mode.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};
use vita_geometry::{Aabb, Point};
use vita_indoor::{FloorId, ObjectId, Timestamp};
use vita_storage::RunScope;

use crate::query::{QueryRequest, QueryService};

/// The ramp schedule: offered rate per step and when to give up.
///
/// # Examples
///
/// ```
/// use vita_serve::LoadProfile;
/// use std::time::Duration;
///
/// // 100 → 200 → 300 → … → 1000 RPS, 250 ms per step, 4 query workers,
/// // stopping early if a step achieves less than 90% of its target.
/// let profile = LoadProfile {
///     initial_rps: 100.0,
///     increment_rps: 100.0,
///     max_rps: 1_000.0,
///     step_duration: Duration::from_millis(250),
///     workers: 4,
///     satisfaction: 0.9,
/// };
/// assert_eq!(profile.targets().count(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct LoadProfile {
    /// Offered rate of the first step (queries per second, all workers
    /// together).
    pub initial_rps: f64,
    /// Rate increase per step.
    pub increment_rps: f64,
    /// Last offered rate; the ramp never steps past it.
    pub max_rps: f64,
    /// Wall-clock length of each step.
    pub step_duration: Duration,
    /// Query worker threads sharing each step's offered rate.
    pub workers: usize,
    /// Fraction of the offered rate a step must achieve for the ramp to
    /// continue (e.g. `0.9`). The first step below this is recorded, then
    /// the ramp stops.
    pub satisfaction: f64,
}

impl Default for LoadProfile {
    fn default() -> Self {
        LoadProfile {
            initial_rps: 500.0,
            increment_rps: 500.0,
            max_rps: 16_000.0,
            step_duration: Duration::from_millis(500),
            workers: 4,
            satisfaction: 0.9,
        }
    }
}

impl LoadProfile {
    /// The offered rates the ramp will try, in order.
    pub fn targets(&self) -> impl Iterator<Item = f64> + '_ {
        let steps = if self.increment_rps > 0.0 {
            ((self.max_rps - self.initial_rps) / self.increment_rps).max(0.0) as usize + 1
        } else {
            1
        };
        (0..steps).map(|i| (self.initial_rps + i as f64 * self.increment_rps).min(self.max_rps))
    }
}

/// A weighted mix of [`QueryRequest`]s plus the parameter universe to draw
/// their arguments from. `sample` picks a variant by weight and fills in
/// uniformly random arguments, so a ramp exercises every query path in a
/// controlled ratio.
///
/// # Examples
///
/// ```
/// use vita_serve::WorkloadSpec;
///
/// // A read mix that never asks for counts and is kNN-heavy.
/// let spec = WorkloadSpec {
///     counts_weight: 0,
///     knn_weight: 8,
///     seed: 7,
///     ..Default::default()
/// };
/// let mut rng = spec.rng();
/// let q = spec.sample(&mut rng);           // some non-Counts request
/// assert!(!matches!(q, vita_serve::QueryRequest::Counts { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    pub counts_weight: u32,
    pub snapshot_weight: u32,
    pub window_weight: u32,
    pub trace_weight: u32,
    pub range_weight: u32,
    pub knn_weight: u32,
    /// Scopes to draw from, uniformly. Default: `[RunScope::All]`.
    pub scopes: Vec<RunScope>,
    /// Object-id universe for `ObjectTrace` (ids `0..objects`).
    pub objects: u32,
    /// Floor universe for spatial queries (floors `0..floors`).
    pub floors: u32,
    /// Time universe for temporal queries (timestamps `0..t_max`).
    pub t_max: u64,
    /// Width of `TimeWindow` queries.
    pub window: u64,
    /// Spatial universe half-extent: range/kNN centers are drawn from
    /// `[-extent, extent]²`, range boxes are `extent/4` wide.
    pub extent: f64,
    /// `k` for kNN queries.
    pub k: usize,
    /// Base RNG seed ([`WorkloadSpec::rng`] and the ramp derive all worker
    /// streams from it, so a ramp is reproducible).
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            counts_weight: 1,
            snapshot_weight: 2,
            window_weight: 2,
            trace_weight: 2,
            range_weight: 2,
            knn_weight: 1,
            scopes: vec![RunScope::All],
            objects: 8,
            floors: 1,
            t_max: 60_000,
            window: 5_000,
            extent: 40.0,
            k: 8,
            seed: 0xC0FFEE,
        }
    }
}

impl WorkloadSpec {
    /// An RNG seeded from [`WorkloadSpec::seed`].
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }

    fn total_weight(&self) -> u32 {
        self.counts_weight
            + self.snapshot_weight
            + self.window_weight
            + self.trace_weight
            + self.range_weight
            + self.knn_weight
    }

    /// Draw one request from the mix. Panics if every weight is zero.
    pub fn sample(&self, rng: &mut StdRng) -> QueryRequest {
        let total = self.total_weight();
        assert!(total > 0, "workload mix needs at least one nonzero weight");
        let scope = *self.scopes.choose(rng).unwrap_or(&RunScope::All);
        let mut pick = rng.gen_range(0..total);
        if pick < self.counts_weight {
            return QueryRequest::Counts { scope };
        }
        pick -= self.counts_weight;
        if pick < self.snapshot_weight {
            return QueryRequest::SnapshotAt {
                scope,
                at: Timestamp(rng.gen_range(0..self.t_max.max(1))),
            };
        }
        pick -= self.snapshot_weight;
        if pick < self.window_weight {
            let from = rng.gen_range(0..self.t_max.max(1));
            return QueryRequest::TimeWindow {
                scope,
                from: Timestamp(from),
                to: Timestamp(from + self.window),
            };
        }
        pick -= self.window_weight;
        if pick < self.trace_weight {
            return QueryRequest::ObjectTrace {
                scope,
                object: ObjectId(rng.gen_range(0..self.objects.max(1))),
            };
        }
        pick -= self.trace_weight;
        let floor = FloorId(rng.gen_range(0..self.floors.max(1)));
        let x = rng.gen_range(-self.extent..self.extent);
        let y = rng.gen_range(-self.extent..self.extent);
        if pick < self.range_weight {
            let half = self.extent / 4.0;
            return QueryRequest::RangeQuery {
                scope,
                floor,
                bounds: Aabb::new(
                    Point::new(x - half, y - half),
                    Point::new(x + half, y + half),
                ),
            };
        }
        QueryRequest::Knn {
            scope,
            floor,
            at: Point::new(x, y),
            k: self.k,
        }
    }
}

/// What one ramp step did.
#[derive(Debug, Clone, PartialEq)]
pub struct StepReport {
    /// Offered rate (queries/s, all workers together).
    pub target_rps: f64,
    /// Rate actually achieved over the step.
    pub achieved_rps: f64,
    /// Queries issued during the step.
    pub issued: usize,
    /// Latency percentiles over the step's queries, in microseconds.
    pub p50_us: u64,
    pub p99_us: u64,
    pub p999_us: u64,
}

/// The whole ramp: every executed step plus the verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct RampReport {
    pub steps: Vec<StepReport>,
    /// Highest offered rate whose step met the satisfaction threshold —
    /// `0.0` if even the first step missed it.
    pub max_sustainable_rps: f64,
}

impl RampReport {
    /// The report as a JSON object (hand-rolled; the workspace carries no
    /// serde).
    pub fn to_json(&self) -> String {
        let steps: Vec<String> = self
            .steps
            .iter()
            .map(|s| {
                format!(
                    "{{\"target_rps\":{:.1},\"achieved_rps\":{:.1},\"issued\":{},\
                     \"p50_us\":{},\"p99_us\":{},\"p999_us\":{}}}",
                    s.target_rps, s.achieved_rps, s.issued, s.p50_us, s.p99_us, s.p999_us
                )
            })
            .collect();
        format!(
            "{{\"max_sustainable_rps\":{:.1},\"steps\":[{}]}}",
            self.max_sustainable_rps,
            steps.join(",")
        )
    }
}

/// Latency percentile (nearest-rank on the sorted slice); `0` when empty.
fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

/// Run one ramp step: `workers` threads share the offered rate, each
/// pacing a closed loop at its slice of the target. Returns the step
/// report and the workers' latencies.
fn run_step(
    service: &QueryService,
    workload: &WorkloadSpec,
    target_rps: f64,
    duration: Duration,
    workers: usize,
    step_index: usize,
) -> StepReport {
    let workers = workers.max(1);
    let per_worker_rps = (target_rps / workers as f64).max(f64::MIN_POSITIVE);
    let slot = Duration::from_secs_f64(1.0 / per_worker_rps);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());

    let started = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let service = service.clone();
            let latencies = &latencies;
            scope.spawn(move || {
                // Derive a distinct, reproducible stream per (step, worker).
                let mut rng = StdRng::seed_from_u64(
                    workload
                        .seed
                        .wrapping_add(step_index as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(w as u64),
                );
                let deadline = started + duration;
                let mut mine = Vec::new();
                let mut next = Instant::now();
                while Instant::now() < deadline {
                    let request = workload.sample(&mut rng);
                    let issued_at = Instant::now();
                    let response = service.execute(&request);
                    // Keep the result path live without retaining rows.
                    std::hint::black_box(response.len());
                    mine.push(issued_at.elapsed().as_micros() as u64);
                    // Pace on the absolute schedule: each slot's send time
                    // is `start + i × slot`, and a worker that got stalled
                    // (scheduler, a slow query) issues back-to-back until
                    // it catches the schedule again — otherwise every
                    // stall permanently lowers the offered rate and the
                    // ramp measures wakeup latency, not the service
                    // (coordinated omission). The catch-up burst is
                    // bounded: a backlog past `RESYNC` slots is forgiven,
                    // so a long stall can't queue an unbounded burst.
                    const SPIN: Duration = Duration::from_micros(200);
                    const RESYNC: u32 = 64;
                    next += slot;
                    let now = Instant::now();
                    if next + slot * RESYNC < now {
                        next = now;
                    }
                    if next >= deadline {
                        // No slot is scheduled before the deadline: the
                        // worker's quota for this step is spent. Running
                        // on would issue an unpaced back-to-back burst for
                        // the rest of the step, overstating the offered
                        // rate and flooding the percentiles with
                        // zero-queue samples.
                        break;
                    }
                    if next > now {
                        if next > now + SPIN {
                            std::thread::sleep(next - now - SPIN);
                        }
                        // Sleep undershoots on purpose; spin out the rest
                        // of the slot (bounded by `SPIN`).
                        while Instant::now() < next {
                            std::hint::spin_loop();
                        }
                    }
                }
                latencies.lock().expect("latency sink").append(&mut mine); // audit: allow(R4) operational: a poisoned latency mutex means a load worker already panicked
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();

    let mut all = latencies.into_inner().expect("latency sink"); // audit: allow(R4) operational: a poisoned latency mutex means a load worker already panicked
    all.sort_unstable();
    StepReport {
        target_rps,
        achieved_rps: if elapsed > 0.0 {
            all.len() as f64 / elapsed
        } else {
            0.0
        },
        issued: all.len(),
        p50_us: percentile(&all, 0.50),
        p99_us: percentile(&all, 0.99),
        p999_us: percentile(&all, 0.999),
    }
}

/// Ramp `service` through `profile`'s offered rates with `workload`'s
/// query mix; see the module docs for the stopping rule.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use vita_serve::{LoadProfile, QueryService, WorkloadSpec};
/// use vita_storage::AnyRepository;
///
/// let service = QueryService::new(Arc::new(AnyRepository::default()));
/// let profile = LoadProfile {
///     initial_rps: 50.0,
///     increment_rps: 50.0,
///     max_rps: 100.0,
///     step_duration: Duration::from_millis(30),
///     workers: 2,
///     satisfaction: 0.5,
/// };
/// let report = vita_serve::run_ramp(&service, &WorkloadSpec::default(), &profile);
/// assert!(!report.steps.is_empty());
/// assert!(report.max_sustainable_rps <= profile.max_rps);
/// ```
/// Run one fixed-rate step — no ramp, no stopping rule: `workers` closed-
/// loop threads share `target_rps` for `duration` and the step report is
/// returned as-is. This is the probe the `vita-lab` experiment runner
/// attaches per trial (a ramp would decide its own length; a trial wants
/// one comparable sample), equivalent to a one-step [`LoadProfile`] with
/// `increment_rps: 0.0`.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use vita_serve::{run_fixed, QueryService, WorkloadSpec};
/// use vita_storage::AnyRepository;
///
/// let service = QueryService::new(Arc::new(AnyRepository::default()));
/// let step = run_fixed(
///     &service,
///     &WorkloadSpec::default(),
///     200.0,
///     Duration::from_millis(25),
///     2,
/// );
/// assert!(step.issued > 0);
/// ```
pub fn run_fixed(
    service: &QueryService,
    workload: &WorkloadSpec,
    target_rps: f64,
    duration: Duration,
    workers: usize,
) -> StepReport {
    run_step(service, workload, target_rps, duration, workers, 0)
}

pub fn run_ramp(
    service: &QueryService,
    workload: &WorkloadSpec,
    profile: &LoadProfile,
) -> RampReport {
    let mut steps = Vec::new();
    let mut max_sustainable = 0.0f64;
    for (i, target) in profile.targets().enumerate() {
        let step = run_step(
            service,
            workload,
            target,
            profile.step_duration,
            profile.workers,
            i,
        );
        let sustained = step.achieved_rps >= profile.satisfaction * step.target_rps;
        steps.push(step);
        if !sustained {
            break;
        }
        max_sustainable = target;
    }
    RampReport {
        steps,
        max_sustainable_rps: max_sustainable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vita_storage::AnyRepository;

    #[test]
    fn targets_step_from_initial_to_max() {
        let p = LoadProfile {
            initial_rps: 100.0,
            increment_rps: 150.0,
            max_rps: 400.0,
            ..Default::default()
        };
        let t: Vec<f64> = p.targets().collect();
        assert_eq!(t, vec![100.0, 250.0, 400.0]);
    }

    #[test]
    fn workload_respects_zero_weights() {
        let spec = WorkloadSpec {
            counts_weight: 0,
            snapshot_weight: 0,
            window_weight: 0,
            trace_weight: 1,
            range_weight: 0,
            knn_weight: 0,
            ..Default::default()
        };
        let mut rng = spec.rng();
        for _ in 0..64 {
            assert!(matches!(
                spec.sample(&mut rng),
                QueryRequest::ObjectTrace { .. }
            ));
        }
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let v: Vec<u64> = (0..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 0.999), 100);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn ramp_reports_valid_json_shape() {
        let service = QueryService::new(Arc::new(AnyRepository::default()));
        let profile = LoadProfile {
            initial_rps: 200.0,
            increment_rps: 200.0,
            max_rps: 400.0,
            step_duration: Duration::from_millis(25),
            workers: 2,
            satisfaction: 0.1,
        };
        let report = run_ramp(&service, &WorkloadSpec::default(), &profile);
        assert!(!report.steps.is_empty());
        assert!(report.steps.len() <= 2);
        for s in &report.steps {
            assert!(s.achieved_rps >= 0.0);
            assert!(s.p50_us <= s.p99_us && s.p99_us <= s.p999_us);
        }
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"max_sustainable_rps\""));
        assert!(json.contains("\"steps\":["));
    }
}
