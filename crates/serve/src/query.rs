//! The typed query surface: [`QueryRequest`] → [`QueryService::execute`] →
//! [`QueryResponse`].

use std::sync::Arc;

use vita_geometry::{Aabb, Point};
use vita_indoor::{FloorId, ObjectId, Timestamp};
use vita_mobility::TrajectorySample;
use vita_storage::{AnyRepository, RunScope, TableCounts};

/// One question for the repository, every variant scoped by a
/// [`RunScope`] — `All` merges every stored run, `One(run)` isolates a
/// single run's rows (e.g. one lane of a `run_many` schedule).
///
/// Each variant maps 1:1 onto a query path of
/// [`vita_storage::AnyRepository`]; [`QueryService::execute`] performs the
/// dispatch. Requests are plain data — build them anywhere (a workload
/// generator, a test, a future wire protocol) and hand them to any clone
/// of the service.
///
/// # Examples
///
/// ```
/// use vita_indoor::{RunId, Timestamp};
/// use vita_serve::QueryRequest;
/// use vita_storage::RunScope;
///
/// // The snapshot of every run's objects at t=5s…
/// let all = QueryRequest::SnapshotAt { scope: RunScope::All, at: Timestamp(5_000) };
/// // …and the same question scoped to run 2 only.
/// let one = QueryRequest::SnapshotAt { scope: RunId(2).into(), at: Timestamp(5_000) };
/// assert_ne!(all.scope(), one.scope());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryRequest {
    /// Row counts of all four tables ([`AnyRepository::counts`]).
    Counts { scope: RunScope },
    /// Latest trajectory sample of every object at or before `at`
    /// ([`AnyRepository::snapshot_at`]).
    SnapshotAt { scope: RunScope, at: Timestamp },
    /// Trajectory samples in the half-open window `[from, to)`
    /// ([`AnyRepository::time_window`]).
    TimeWindow {
        scope: RunScope,
        from: Timestamp,
        to: Timestamp,
    },
    /// One object's full trajectory, time-ordered
    /// ([`AnyRepository::object_trace`]).
    ObjectTrace { scope: RunScope, object: ObjectId },
    /// Trajectory samples inside an axis-aligned box on one floor
    /// ([`AnyRepository::range_query`]).
    RangeQuery {
        scope: RunScope,
        floor: FloorId,
        bounds: Aabb,
    },
    /// The `k` samples nearest to `at` on one floor, with distances
    /// ([`AnyRepository::knn`]).
    Knn {
        scope: RunScope,
        floor: FloorId,
        at: Point,
        k: usize,
    },
}

impl QueryRequest {
    /// The run scope this request carries, whatever its variant.
    pub fn scope(&self) -> RunScope {
        match *self {
            QueryRequest::Counts { scope }
            | QueryRequest::SnapshotAt { scope, .. }
            | QueryRequest::TimeWindow { scope, .. }
            | QueryRequest::ObjectTrace { scope, .. }
            | QueryRequest::RangeQuery { scope, .. }
            | QueryRequest::Knn { scope, .. } => scope,
        }
    }
}

/// What a [`QueryRequest`] comes back with.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResponse {
    /// Answer to [`QueryRequest::Counts`].
    Counts(TableCounts),
    /// Answer to the row-set queries (`SnapshotAt`, `TimeWindow`,
    /// `ObjectTrace`, `RangeQuery`).
    Samples(Vec<TrajectorySample>),
    /// Answer to [`QueryRequest::Knn`]: nearest samples with their
    /// distances, nearest first.
    Neighbors(Vec<(TrajectorySample, f64)>),
}

impl QueryResponse {
    /// Rows in the response — the row count for `Counts`, the number of
    /// returned samples/neighbors otherwise. Lets load generators account
    /// result sizes without matching on the variant.
    pub fn len(&self) -> usize {
        match self {
            QueryResponse::Counts(c) => c.total(),
            QueryResponse::Samples(rows) => rows.len(),
            QueryResponse::Neighbors(rows) => rows.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The query front-end: executes [`QueryRequest`]s against a shared
/// repository handle. Cloning is one `Arc` bump, so a worker pool holds
/// one clone per thread while ingestion keeps appending to the same
/// repository — reads take the table (or shard) read locks, giving every
/// response a prefix-consistent snapshot of the ingestion stream.
#[derive(Clone)]
pub struct QueryService {
    repo: Arc<AnyRepository>,
}

impl QueryService {
    /// Serve queries from `repo`. Toolkit users get this wired up by
    /// `Vita::serve()`; tests and benchmarks can hand any repository
    /// handle straight in.
    pub fn new(repo: Arc<AnyRepository>) -> Self {
        QueryService { repo }
    }

    /// The repository this service answers from.
    pub fn repository(&self) -> &AnyRepository {
        &self.repo
    }

    /// Answer one request. Infallible: every variant maps onto a total
    /// repository query (an empty repository or an unknown run id yields
    /// empty rows / zero counts, never an error).
    pub fn execute(&self, request: &QueryRequest) -> QueryResponse {
        match *request {
            QueryRequest::Counts { scope } => QueryResponse::Counts(self.repo.counts(scope)),
            QueryRequest::SnapshotAt { scope, at } => {
                QueryResponse::Samples(self.repo.snapshot_at(scope, at))
            }
            QueryRequest::TimeWindow { scope, from, to } => {
                QueryResponse::Samples(self.repo.time_window(scope, from, to))
            }
            QueryRequest::ObjectTrace { scope, object } => {
                QueryResponse::Samples(self.repo.object_trace(scope, object))
            }
            QueryRequest::RangeQuery {
                scope,
                floor,
                ref bounds,
            } => QueryResponse::Samples(self.repo.range_query(scope, floor, bounds)),
            QueryRequest::Knn {
                scope,
                floor,
                at,
                k,
            } => QueryResponse::Neighbors(self.repo.knn(scope, floor, at, k)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vita_indoor::{BuildingId, RunId};
    use vita_storage::{ProductBatch, ProductSink};

    fn sample(o: u32, t: u64, x: f64) -> TrajectorySample {
        TrajectorySample::new(
            ObjectId(o),
            BuildingId(0),
            FloorId(0),
            Point::new(x, 0.0),
            Timestamp(t),
        )
    }

    fn service_with_two_runs() -> QueryService {
        let repo = Arc::new(AnyRepository::default());
        repo.accept_run(
            RunId(0),
            ProductBatch::Trajectories(vec![sample(1, 10, 1.0), sample(1, 20, 2.0)]),
        );
        repo.accept_run(
            RunId(1),
            ProductBatch::Trajectories(vec![sample(2, 15, 3.0)]),
        );
        QueryService::new(repo)
    }

    #[test]
    fn every_variant_dispatches_to_the_matching_repository_path() {
        let svc = service_with_two_runs();
        let repo = svc.repository();

        let reqs = [
            QueryRequest::Counts {
                scope: RunScope::All,
            },
            QueryRequest::SnapshotAt {
                scope: RunId(0).into(),
                at: Timestamp(20),
            },
            QueryRequest::TimeWindow {
                scope: RunScope::All,
                from: Timestamp(0),
                to: Timestamp(16),
            },
            QueryRequest::ObjectTrace {
                scope: RunScope::All,
                object: ObjectId(1),
            },
            QueryRequest::RangeQuery {
                scope: RunScope::All,
                floor: FloorId(0),
                bounds: Aabb::new(Point::new(0.0, -1.0), Point::new(2.5, 1.0)),
            },
            QueryRequest::Knn {
                scope: RunId(1).into(),
                floor: FloorId(0),
                at: Point::new(0.0, 0.0),
                k: 2,
            },
        ];
        let want = [
            QueryResponse::Counts(repo.counts(RunScope::All)),
            QueryResponse::Samples(repo.snapshot_at(RunId(0).into(), Timestamp(20))),
            QueryResponse::Samples(repo.time_window(RunScope::All, Timestamp(0), Timestamp(16))),
            QueryResponse::Samples(repo.object_trace(RunScope::All, ObjectId(1))),
            QueryResponse::Samples(repo.range_query(
                RunScope::All,
                FloorId(0),
                &Aabb::new(Point::new(0.0, -1.0), Point::new(2.5, 1.0)),
            )),
            QueryResponse::Neighbors(repo.knn(
                RunId(1).into(),
                FloorId(0),
                Point::new(0.0, 0.0),
                2,
            )),
        ];
        for (req, want) in reqs.iter().zip(want) {
            assert_eq!(svc.execute(req), want, "request {req:?}");
        }
    }

    #[test]
    fn scopes_isolate_runs() {
        let svc = service_with_two_runs();
        let all = svc.execute(&QueryRequest::Counts {
            scope: RunScope::All,
        });
        let run0 = svc.execute(&QueryRequest::Counts {
            scope: RunId(0).into(),
        });
        let run9 = svc.execute(&QueryRequest::Counts {
            scope: RunId(9).into(),
        });
        assert_eq!(all.len(), 3);
        assert_eq!(run0.len(), 2);
        assert_eq!(run9.len(), 0);
    }

    #[test]
    fn clones_answer_from_the_same_repository() {
        let svc = service_with_two_runs();
        let clone = svc.clone();
        svc.repository().accept_run(
            RunId(0),
            ProductBatch::Trajectories(vec![sample(3, 30, 4.0)]),
        );
        let req = QueryRequest::Counts {
            scope: RunScope::All,
        };
        assert_eq!(clone.execute(&req), svc.execute(&req));
        assert_eq!(clone.execute(&req).len(), 4);
    }
}
