//! The Configuration Loader: maps properties files onto the typed
//! configurations of every layer (paper Fig. 2: "The Configuration Loader
//! allows one to directly edit the parameters for data generation").
//!
//! Key schema (all optional — defaults mirror each layer's `Default`):
//!
//! ```text
//! # Moving Object Layer
//! objects.count, objects.min_speed, objects.max_speed
//! objects.distribution = uniform | crowd-outliers
//! objects.crowds, objects.crowd_fraction, objects.crowd_radius
//! objects.lifespan_min_s, objects.lifespan_max_s
//! objects.arrival_rate_per_min          (0 disables arrivals)
//! objects.emerging = entrances | anywhere
//! pattern.intention = destination | random-way
//! pattern.routing = min-distance | min-time
//! pattern.behavior = continuous | walk-stay
//! pattern.stay_min_s, pattern.stay_max_s, pattern.pause_prob
//! trajectory.hz
//! run.duration_s, run.seed
//!
//! # Positioning Layer — RSSI
//! rssi.exponent, rssi.wall_attenuation_dbm
//! rssi.noise = none | gaussian | uniform
//! rssi.noise_sigma, rssi.noise_half_width
//! rssi.hz                               (override; absent = device rate)
//!
//! # Positioning Layer — method
//! positioning.method = trilateration | fingerprint-knn | fingerprint-bayes | proximity
//! positioning.hz, positioning.window_ms
//! trilateration.min_devices
//! fingerprint.grid_spacing, fingerprint.samples_per_location, fingerprint.k
//! fingerprint.top_candidates, fingerprint.floor
//! proximity.rssi_threshold_dbm          (absent = no threshold)
//! proximity.gap_grace
//!
//! # Streaming pipeline + Storage
//! stream.workers, stream.channel_capacity
//! storage.backend = single | sharded(N) | segmented | segmented-spill(BUDGET_ROWS)
//! ```

use vita_indoor::{FloorId, Hz, RoutingSchema, Timestamp};
use vita_mobility::{
    ArrivalProcess, Behavior, EmergingLocation, InitialDistribution, Intention, LifespanConfig,
    MobilityConfig, MovingPattern,
};
use vita_positioning::{
    FingerprintConfig, MethodConfig, ProximityConfig, ReferenceSelection, SurveyConfig,
    TrilaterationConfig,
};
use vita_rssi::{NoiseModel, PathLossModel, RssiConfig};

use crate::pipeline::{ScenarioConfig, StreamOptions};
use crate::props::{Properties, PropsError};
use vita_storage::StorageBackend;

/// Configuration errors: property-level plus enum-value problems.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigLoadError {
    Props(PropsError),
    UnknownVariant { key: &'static str, value: String },
}

impl std::fmt::Display for ConfigLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigLoadError::Props(e) => write!(f, "{e}"),
            ConfigLoadError::UnknownVariant { key, value } => {
                write!(f, "unknown value '{value}' for '{key}'")
            }
        }
    }
}

impl std::error::Error for ConfigLoadError {}

impl From<PropsError> for ConfigLoadError {
    fn from(e: PropsError) -> Self {
        ConfigLoadError::Props(e)
    }
}

/// Load the Moving Object Layer configuration.
pub fn load_mobility(p: &Properties) -> Result<MobilityConfig, ConfigLoadError> {
    let d = MobilityConfig::default();

    let distribution = match p.str_or("objects.distribution", "uniform") {
        "uniform" => InitialDistribution::Uniform,
        "crowd-outliers" => InitialDistribution::CrowdOutliers {
            crowds: p.usize_or("objects.crowds", 3)?,
            crowd_fraction: p.f64_or("objects.crowd_fraction", 0.8)?,
            crowd_radius: p.f64_or("objects.crowd_radius", 4.0)?,
        },
        other => {
            return Err(ConfigLoadError::UnknownVariant {
                key: "objects.distribution",
                value: other.to_string(),
            })
        }
    };

    let intention = match p.str_or("pattern.intention", "destination") {
        "destination" => Intention::Destination,
        "random-way" => Intention::RandomWay,
        other => {
            return Err(ConfigLoadError::UnknownVariant {
                key: "pattern.intention",
                value: other.to_string(),
            })
        }
    };

    let routing = match p.str_or("pattern.routing", "min-distance") {
        "min-distance" => RoutingSchema::MinDistance,
        "min-time" => RoutingSchema::min_time_default(),
        other => {
            return Err(ConfigLoadError::UnknownVariant {
                key: "pattern.routing",
                value: other.to_string(),
            })
        }
    };

    let behavior = match p.str_or("pattern.behavior", "walk-stay") {
        "continuous" => Behavior::ContinuousWalk,
        "walk-stay" => Behavior::WalkStay {
            stay_min: Timestamp::from_secs_f64(p.f64_or("pattern.stay_min_s", 10.0)?),
            stay_max: Timestamp::from_secs_f64(p.f64_or("pattern.stay_max_s", 60.0)?),
            pause_on_path_prob: p.f64_or("pattern.pause_prob", 0.1)?,
        },
        other => {
            return Err(ConfigLoadError::UnknownVariant {
                key: "pattern.behavior",
                value: other.to_string(),
            })
        }
    };

    let arrival_rate = p.f64_or("objects.arrival_rate_per_min", 0.0)?;
    let arrivals = if arrival_rate > 0.0 {
        ArrivalProcess::Poisson {
            rate_per_min: arrival_rate,
        }
    } else {
        ArrivalProcess::None
    };

    let emerging = match p.str_or("objects.emerging", "entrances") {
        "entrances" => EmergingLocation::Entrances,
        "anywhere" => EmergingLocation::Anywhere,
        other => {
            return Err(ConfigLoadError::UnknownVariant {
                key: "objects.emerging",
                value: other.to_string(),
            })
        }
    };

    Ok(MobilityConfig {
        object_count: p.usize_or("objects.count", d.object_count)?,
        min_speed: p.f64_or("objects.min_speed", d.min_speed)?,
        max_speed: p.f64_or("objects.max_speed", d.max_speed)?,
        distribution,
        lifespan: LifespanConfig {
            min: Timestamp::from_secs_f64(p.f64_or("objects.lifespan_min_s", 300.0)?),
            max: Timestamp::from_secs_f64(p.f64_or("objects.lifespan_max_s", 900.0)?),
        },
        arrivals,
        emerging,
        pattern: MovingPattern {
            intention,
            routing,
            behavior,
        },
        trajectory_hz: Hz(p.f64_or("trajectory.hz", 1.0)?),
        duration: Timestamp::from_secs_f64(p.f64_or("run.duration_s", 600.0)?),
        seed: p.u64_or("run.seed", d.seed)?,
    })
}

/// Load the RSSI Measurement Controller configuration.
pub fn load_rssi(p: &Properties) -> Result<RssiConfig, ConfigLoadError> {
    let d = RssiConfig::default();
    let noise = match p.str_or("rssi.noise", "gaussian") {
        "none" => NoiseModel::None,
        "gaussian" => NoiseModel::Gaussian {
            sigma: p.f64_or("rssi.noise_sigma", 2.0)?,
        },
        "uniform" => NoiseModel::Uniform {
            half_width: p.f64_or("rssi.noise_half_width", 3.0)?,
        },
        other => {
            return Err(ConfigLoadError::UnknownVariant {
                key: "rssi.noise",
                value: other.to_string(),
            })
        }
    };
    let sampling_hz = if p.contains("rssi.hz") {
        Some(Hz(p.f64_or("rssi.hz", 1.0)?))
    } else {
        None
    };
    Ok(RssiConfig {
        path_loss: PathLossModel {
            exponent: p.f64_or("rssi.exponent", 3.0)?,
            wall_attenuation_dbm: p.f64_or("rssi.wall_attenuation_dbm", 4.0)?,
            fluctuation: noise,
        },
        sampling_hz,
        duration: Timestamp::from_secs_f64(p.f64_or("run.duration_s", 600.0)?),
        seed: p.u64_or("rssi.seed", d.seed)?,
    })
}

/// Load the Positioning Method Controller configuration.
pub fn load_method(p: &Properties) -> Result<MethodConfig, ConfigLoadError> {
    let sampling_hz = Hz(p.f64_or("positioning.hz", 0.5)?);
    let window_ms = p.u64_or("positioning.window_ms", 3_000)?;
    let rssi_cfg = load_rssi(p)?;

    match p.str_or("positioning.method", "trilateration") {
        "trilateration" => Ok(MethodConfig::Trilateration {
            config: TrilaterationConfig {
                sampling_hz,
                window_ms,
                min_devices: p.usize_or("trilateration.min_devices", 3)?,
                max_devices: p.usize_or("trilateration.max_devices", 64)?,
                clamp_to_detection_range: p
                    .bool_or("trilateration.clamp_to_detection_range", true)?,
            },
            conversion_model: rssi_cfg.path_loss,
        }),
        m @ ("fingerprint-knn" | "fingerprint-bayes") => {
            let survey = SurveyConfig {
                selection: ReferenceSelection::Grid {
                    spacing: p.f64_or("fingerprint.grid_spacing", 3.0)?,
                },
                samples_per_location: p.usize_or("fingerprint.samples_per_location", 10)?,
                path_loss: rssi_cfg.path_loss,
                seed: p.u64_or("fingerprint.seed", 0xF00D)?,
            };
            let online = FingerprintConfig {
                sampling_hz,
                window_ms,
                k: p.usize_or("fingerprint.k", 3)?,
                top_candidates: p.usize_or("fingerprint.top_candidates", 5)?,
            };
            let floor = FloorId(p.u64_or("fingerprint.floor", 0)? as u32);
            if m == "fingerprint-knn" {
                Ok(MethodConfig::FingerprintingKnn {
                    survey,
                    online,
                    floor,
                })
            } else {
                Ok(MethodConfig::FingerprintingBayes {
                    survey,
                    online,
                    floor,
                })
            }
        }
        "proximity" => Ok(MethodConfig::Proximity(ProximityConfig {
            rssi_threshold_dbm: if p.contains("proximity.rssi_threshold_dbm") {
                Some(p.f64_or("proximity.rssi_threshold_dbm", -75.0)?)
            } else {
                None
            },
            gap_grace: p.f64_or("proximity.gap_grace", 1.5)?,
        })),
        other => Err(ConfigLoadError::UnknownVariant {
            key: "positioning.method",
            value: other.to_string(),
        }),
    }
}

/// Load the streaming-pipeline tuning knobs and the storage backend.
/// `storage.backend` takes the [`StorageBackend`] display grammar
/// (`single` | `sharded(N)` | `segmented` | `segmented-spill(BUDGET_ROWS)`).
pub fn load_stream_options(p: &Properties) -> Result<StreamOptions, ConfigLoadError> {
    let d = StreamOptions::default();
    let backend: StorageBackend = p.str_or("storage.backend", "single").parse().map_err(
        |e: vita_storage::ParseBackendError| ConfigLoadError::UnknownVariant {
            key: "storage.backend",
            value: e.0,
        },
    )?;
    Ok(StreamOptions {
        workers: p.usize_or("stream.workers", d.workers)?,
        channel_capacity: p.usize_or("stream.channel_capacity", d.channel_capacity)?,
        backend,
    })
}

/// Load a whole streamed scenario — the four configurations a
/// [`crate::Vita::run_streaming`] / [`crate::Vita::run_many`] lane needs —
/// from one properties set. This is the entry point the `vita-lab`
/// experiment runner binds trial properties through.
pub fn load_scenario(p: &Properties) -> Result<ScenarioConfig, ConfigLoadError> {
    Ok(ScenarioConfig {
        mobility: load_mobility(p)?,
        rssi: load_rssi(p)?,
        method: load_method(p)?,
        options: load_stream_options(p)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_properties_give_defaults() {
        let p = Properties::new();
        let m = load_mobility(&p).unwrap();
        assert_eq!(m.object_count, MobilityConfig::default().object_count);
        assert_eq!(m.distribution, InitialDistribution::Uniform);
        let r = load_rssi(&p).unwrap();
        assert!(r.sampling_hz.is_none());
        let method = load_method(&p).unwrap();
        assert!(matches!(method, MethodConfig::Trilateration { .. }));
    }

    #[test]
    fn full_mobility_config_parses() {
        let text = "\
objects.count = 200
objects.min_speed = 0.5
objects.max_speed = 2.0
objects.distribution = crowd-outliers
objects.crowds = 4
objects.crowd_fraction = 0.75
objects.crowd_radius = 5.0
objects.lifespan_min_s = 120
objects.lifespan_max_s = 240
objects.arrival_rate_per_min = 12
objects.emerging = anywhere
pattern.intention = random-way
pattern.routing = min-time
pattern.behavior = continuous
trajectory.hz = 4
run.duration_s = 300
run.seed = 42
";
        let p = Properties::parse(text).unwrap();
        let m = load_mobility(&p).unwrap();
        assert_eq!(m.object_count, 200);
        assert!(matches!(
            m.distribution,
            InitialDistribution::CrowdOutliers { crowds: 4, .. }
        ));
        assert!(matches!(m.arrivals, ArrivalProcess::Poisson { .. }));
        assert_eq!(m.emerging, EmergingLocation::Anywhere);
        assert_eq!(m.pattern.intention, Intention::RandomWay);
        assert!(matches!(m.pattern.routing, RoutingSchema::MinTime(_)));
        assert_eq!(m.pattern.behavior, Behavior::ContinuousWalk);
        assert_eq!(m.trajectory_hz, Hz(4.0));
        assert_eq!(m.duration, Timestamp(300_000));
        assert_eq!(m.seed, 42);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn rssi_noise_variants() {
        let p = Properties::parse("rssi.noise = none\n").unwrap();
        assert_eq!(
            load_rssi(&p).unwrap().path_loss.fluctuation,
            NoiseModel::None
        );
        let p = Properties::parse("rssi.noise = uniform\nrssi.noise_half_width = 2.5\n").unwrap();
        assert_eq!(
            load_rssi(&p).unwrap().path_loss.fluctuation,
            NoiseModel::Uniform { half_width: 2.5 }
        );
        let p = Properties::parse("rssi.noise = purple\n").unwrap();
        assert!(matches!(
            load_rssi(&p),
            Err(ConfigLoadError::UnknownVariant { .. })
        ));
    }

    #[test]
    fn rssi_hz_override_detected() {
        let p = Properties::parse("rssi.hz = 2\n").unwrap();
        assert_eq!(load_rssi(&p).unwrap().sampling_hz, Some(Hz(2.0)));
    }

    #[test]
    fn all_methods_parse() {
        for (name, check) in [
            ("trilateration", true),
            ("fingerprint-knn", true),
            ("fingerprint-bayes", true),
            ("proximity", true),
        ] {
            let p = Properties::parse(&format!("positioning.method = {name}\n")).unwrap();
            let m = load_method(&p);
            assert_eq!(m.is_ok(), check, "{name}: {m:?}");
        }
        let p = Properties::parse("positioning.method = astrology\n").unwrap();
        assert!(load_method(&p).is_err());
    }

    #[test]
    fn proximity_threshold_optional() {
        let p = Properties::parse("positioning.method = proximity\n").unwrap();
        match load_method(&p).unwrap() {
            MethodConfig::Proximity(c) => assert_eq!(c.rssi_threshold_dbm, None),
            _ => unreachable!(),
        }
        let p = Properties::parse(
            "positioning.method = proximity\nproximity.rssi_threshold_dbm = -70\n",
        )
        .unwrap();
        match load_method(&p).unwrap() {
            MethodConfig::Proximity(c) => assert_eq!(c.rssi_threshold_dbm, Some(-70.0)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn stream_options_parse_backends() {
        let p = Properties::new();
        let o = load_stream_options(&p).unwrap();
        assert_eq!(o.workers, StreamOptions::default().workers);
        assert_eq!(o.backend, StorageBackend::Single);

        let p = Properties::parse("storage.backend = sharded(4)\nstream.workers = 3\n").unwrap();
        let o = load_stream_options(&p).unwrap();
        assert_eq!(o.workers, 3);
        assert_eq!(o.backend, StorageBackend::Sharded { shards: 4 });

        let p = Properties::parse("storage.backend = segmented-spill(2048)\n").unwrap();
        match load_stream_options(&p).unwrap().backend {
            StorageBackend::Segmented { spill: Some(c) } => {
                assert_eq!(c.memory_budget_rows, 2048)
            }
            b => panic!("expected spill backend, got {b:?}"),
        }

        let p = Properties::parse("storage.backend = quantum\n").unwrap();
        assert!(matches!(
            load_stream_options(&p),
            Err(ConfigLoadError::UnknownVariant {
                key: "storage.backend",
                ..
            })
        ));
    }

    #[test]
    fn scenario_loads_end_to_end() {
        let p = Properties::parse(
            "objects.count = 7\nrun.duration_s = 30\npositioning.method = proximity\n\
             storage.backend = segmented\nstream.workers = 2\n",
        )
        .unwrap();
        let s = load_scenario(&p).unwrap();
        assert_eq!(s.mobility.object_count, 7);
        assert!(matches!(s.method, MethodConfig::Proximity(_)));
        assert_eq!(s.options.workers, 2);
        assert_eq!(s.options.backend, StorageBackend::segmented());
    }

    #[test]
    fn unknown_variant_errors_name_the_key() {
        let p = Properties::parse("pattern.intention = teleport\n").unwrap();
        match load_mobility(&p).unwrap_err() {
            ConfigLoadError::UnknownVariant { key, value } => {
                assert_eq!(key, "pattern.intention");
                assert_eq!(value, "teleport");
            }
            e => panic!("{e:?}"),
        }
    }
}
