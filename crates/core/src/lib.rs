#![forbid(unsafe_code)]
//! # vita-core
//!
//! The Vita toolkit: "a generic, user-configurable toolkit for generating
//! different types of indoor mobility data for real-world buildings"
//! (Li et al., PVLDB 9(13), 2016).
//!
//! This crate is the facade over the whole system (paper Fig. 2):
//!
//! * **Interface** — the DBI Processor lives in `vita-dbi`; the
//!   Configuration Loader is [`props`] + [`config`] (properties files, as in
//!   the paper's §5 demo).
//! * **Producer** — the three layers, orchestrated by [`pipeline::Vita`]:
//!   Infrastructure (`vita-indoor` + `vita-devices`), Moving Object
//!   (`vita-mobility`), Positioning (`vita-rssi` + `vita-positioning`).
//! * **Storage** — `vita-storage`, wired into the pipeline.
//! * [`render`] — ASCII/SVG floor plans standing in for the GUI (Fig. 3/4).
//!
//! ## Quickstart
//!
//! ```
//! use vita_core::prelude::*;
//!
//! // 1. A DBI file (here: synthesized office; real files parse the same way).
//! let dbi_text = vita_dbi::write_step(&vita_dbi::office(&vita_dbi::SynthParams::with_floors(2)));
//! let mut vita = Vita::from_dbi_text(&dbi_text, &BuildParams::default()).unwrap();
//!
//! // 3. Deploy Wi-Fi access points with the coverage model.
//! vita.deploy_devices(
//!     DeviceSpec::default_for(DeviceType::WiFi),
//!     FloorId(0),
//!     DeploymentModel::Coverage,
//!     8,
//! );
//!
//! // 4. Generate moving objects (ground-truth trajectories).
//! let mob = MobilityConfig {
//!     object_count: 5,
//!     duration: Timestamp(30_000),
//!     lifespan: LifespanConfig { min: Timestamp(30_000), max: Timestamp(30_000) },
//!     ..Default::default()
//! };
//! vita.generate_objects(&mob).unwrap();
//!
//! // 5. Raw RSSI, 6. positioning data.
//! vita.generate_rssi(&RssiConfig { duration: Timestamp(30_000), ..Default::default() }).unwrap();
//! let fixes = vita.run_positioning(&MethodConfig::Trilateration {
//!     config: TrilaterationConfig::default(),
//!     conversion_model: PathLossModel::default(),
//! }).unwrap();
//! assert!(!fixes.is_empty());
//! ```

pub mod config;
pub mod pipeline;
pub mod props;
pub mod render;

pub use config::{
    load_method, load_mobility, load_rssi, load_scenario, load_stream_options, ConfigLoadError,
};
pub use pipeline::{
    derive_run_seed, PipelineReport, ScenarioConfig, StreamOptions, Vita, VitaError,
};
pub use props::{Properties, PropsError};
pub use render::{ascii_floor, svg_floor, Overlay};
pub use vita_storage::{RunId, RunScope, ShardCounts, StorageBackend, TableCounts};

/// Convenient glob import for toolkit users.
pub mod prelude {
    pub use crate::pipeline::{
        derive_run_seed, PipelineReport, ScenarioConfig, StreamOptions, Vita, VitaError,
    };
    pub use crate::props::Properties;
    pub use crate::render::{ascii_floor, svg_floor, Overlay};
    pub use vita_dbi::SynthParams;
    pub use vita_devices::{DeploymentModel, DeviceSpec, DeviceType};
    pub use vita_indoor::{
        BuildParams, BuildingId, DeviceId, FloorId, Hz, Loc, ObjectId, RoutingSchema, RunId,
        Timestamp,
    };
    pub use vita_mobility::{
        Behavior, InitialDistribution, Intention, LifespanConfig, MobilityConfig, MovingPattern,
    };
    pub use vita_positioning::{
        ErrorStats, FingerprintConfig, MethodConfig, PositioningData, ProximityConfig,
        SurveyConfig, TrilaterationConfig,
    };
    pub use vita_rssi::{NoiseModel, PathLossModel, RssiConfig};
    pub use vita_storage::{RunScope, ShardCounts, StorageBackend, TableCounts};
}
