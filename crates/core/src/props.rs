//! Properties-file configuration (the Configuration Loader of paper Fig. 2).
//!
//! "When a positioning method is chosen, the system opens a generated
//! properties file for configuring the relevant parameters" (paper §5).
//! This module implements that format: `key = value` lines, `#` comments,
//! with typed getters and round-trip writing. It is the text surface of
//! every layer's configuration.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed properties file: ordered `key → value` pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Properties {
    entries: BTreeMap<String, String>,
}

/// Errors from parsing or typed access.
#[derive(Debug, Clone, PartialEq)]
pub enum PropsError {
    /// A non-comment line without `=`.
    MalformedLine { line: u32, text: String },
    /// Key missing.
    Missing(String),
    /// Value present but not parseable as the requested type.
    BadValue {
        key: String,
        value: String,
        expected: &'static str,
    },
}

impl fmt::Display for PropsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropsError::MalformedLine { line, text } => {
                write!(f, "line {line}: malformed property '{text}'")
            }
            PropsError::Missing(k) => write!(f, "missing property '{k}'"),
            PropsError::BadValue {
                key,
                value,
                expected,
            } => {
                write!(f, "property '{key}' = '{value}' is not a valid {expected}")
            }
        }
    }
}

impl std::error::Error for PropsError {}

impl Properties {
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse properties text.
    pub fn parse(text: &str) -> Result<Self, PropsError> {
        let mut entries = BTreeMap::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with("//") {
                continue;
            }
            let Some((k, v)) = line.split_once('=') else {
                return Err(PropsError::MalformedLine {
                    line: i as u32 + 1,
                    text: line.to_string(),
                });
            };
            entries.insert(k.trim().to_string(), v.trim().to_string());
        }
        Ok(Properties { entries })
    }

    /// Serialize back to properties text (sorted by key).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.entries {
            out.push_str(k);
            out.push_str(" = ");
            out.push_str(v);
            out.push('\n');
        }
        out
    }

    pub fn set(&mut self, key: &str, value: impl fmt::Display) {
        self.entries.insert(key.to_string(), value.to_string());
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Required string.
    pub fn str_req(&self, key: &str) -> Result<&str, PropsError> {
        self.get(key)
            .ok_or_else(|| PropsError::Missing(key.to_string()))
    }

    /// Optional f64 with default.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, PropsError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| PropsError::BadValue {
                key: key.to_string(),
                value: v.to_string(),
                expected: "number",
            }),
        }
    }

    /// Optional u64 with default.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, PropsError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| PropsError::BadValue {
                key: key.to_string(),
                value: v.to_string(),
                expected: "integer",
            }),
        }
    }

    /// Optional usize with default.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, PropsError> {
        Ok(self.u64_or(key, default as u64)? as usize)
    }

    /// Optional bool with default (`true/false/yes/no/1/0`).
    pub fn bool_or(&self, key: &str, default: bool) -> Result<bool, PropsError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => match v.to_ascii_lowercase().as_str() {
                "true" | "yes" | "1" => Ok(true),
                "false" | "no" | "0" => Ok(false),
                _ => Err(PropsError::BadValue {
                    key: key.to_string(),
                    value: v.to_string(),
                    expected: "boolean",
                }),
            },
        }
    }

    /// Optional string with default.
    pub fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# Vita moving-object layer
object.count = 120
object.max_speed = 1.8
pattern.intention = destination

// another comment style
lifespan.min_s = 60
noise.enabled = yes
";

    #[test]
    fn parse_and_typed_access() {
        let p = Properties::parse(SAMPLE).unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p.usize_or("object.count", 0).unwrap(), 120);
        assert!((p.f64_or("object.max_speed", 0.0).unwrap() - 1.8).abs() < 1e-12);
        assert_eq!(p.str_or("pattern.intention", "x"), "destination");
        assert_eq!(p.u64_or("lifespan.min_s", 0).unwrap(), 60);
        assert!(p.bool_or("noise.enabled", false).unwrap());
        // Defaults for absent keys.
        assert_eq!(p.usize_or("absent", 7).unwrap(), 7);
        assert!(!p.bool_or("absent", false).unwrap());
        assert_eq!(p.str_or("absent", "d"), "d");
    }

    #[test]
    fn round_trip() {
        let p = Properties::parse(SAMPLE).unwrap();
        let text = p.to_text();
        let q = Properties::parse(&text).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn malformed_line_reports_position() {
        let err = Properties::parse("a = 1\nnot a property\n").unwrap_err();
        match err {
            PropsError::MalformedLine { line, .. } => assert_eq!(line, 2),
            e => panic!("{e:?}"),
        }
    }

    #[test]
    fn bad_values_reported() {
        let p = Properties::parse("n = abc\n").unwrap();
        assert!(matches!(
            p.f64_or("n", 0.0),
            Err(PropsError::BadValue { .. })
        ));
        assert!(matches!(p.u64_or("n", 0), Err(PropsError::BadValue { .. })));
        assert!(matches!(
            p.bool_or("n", false),
            Err(PropsError::BadValue { .. })
        ));
    }

    #[test]
    fn required_key() {
        let p = Properties::parse("a = 1\n").unwrap();
        assert_eq!(p.str_req("a").unwrap(), "1");
        assert!(matches!(p.str_req("b"), Err(PropsError::Missing(_))));
    }

    #[test]
    fn set_and_contains() {
        let mut p = Properties::new();
        assert!(p.is_empty());
        p.set("x.y", 3.5);
        assert!(p.contains("x.y"));
        assert_eq!(p.get("x.y"), Some("3.5"));
    }

    #[test]
    fn values_may_contain_equals() {
        let p = Properties::parse("formula = a=b+c\n").unwrap();
        assert_eq!(p.get("formula"), Some("a=b+c"));
    }
}
