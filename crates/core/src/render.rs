//! Floor-plan rendering: the non-interactive stand-in for the paper's GUI
//! (Fig. 4) and for Fig. 3's annotated floor plans.
//!
//! Two backends: an ASCII raster for terminals/logs and an SVG writer for
//! documents. Both draw partitions (tagged by semantic class), doors,
//! devices, moving objects (crowds get distinct markers, echoing Fig. 3(b)'s
//! circles vs rectangles) and optional trajectory polylines.

use std::fmt::Write as _;

use vita_devices::DeviceRegistry;
use vita_geometry::Point;
use vita_indoor::{DoorKind, FloorId, IndoorEnvironment};

/// Things to overlay on the floor plan.
#[derive(Debug, Clone, Default)]
pub struct Overlay {
    /// Device positions.
    pub devices: Vec<Point>,
    /// Object positions, with crowd index when part of a crowd.
    pub objects: Vec<(Point, Option<usize>)>,
    /// Trajectory polylines.
    pub trajectories: Vec<Vec<Point>>,
}

impl Overlay {
    pub fn with_devices(mut self, reg: &DeviceRegistry, floor: FloorId) -> Self {
        self.devices = reg.on_floor(floor).map(|d| d.position).collect();
        self
    }
}

/// Render a floor to an ASCII raster roughly `cols` characters wide.
///
/// Legend: partition interiors use their semantic tag (dimmed to `.` except
/// near the label), `#` walls/boundaries, `D` doors, `=` openings, `@`
/// devices, `o` crowd objects (digit = crowd index), `x` outliers.
pub fn ascii_floor(
    env: &IndoorEnvironment,
    floor: FloorId,
    cols: usize,
    overlay: &Overlay,
) -> String {
    let cols = cols.clamp(20, 300);
    // Floor bounds.
    let mut bb = vita_geometry::Aabb::empty();
    for &pid in &env.floor(floor).partitions {
        bb = bb.union(&env.partition(pid).polygon.bbox());
    }
    if bb.is_empty() {
        return String::from("(empty floor)\n");
    }
    let scale = bb.width() / cols as f64;
    // Terminal cells are ~2× taller than wide.
    let rows = ((bb.height() / (scale * 2.0)).ceil() as usize).max(1);

    let to_world = |c: usize, r: usize| -> Point {
        Point::new(
            bb.min.x + (c as f64 + 0.5) * scale,
            // Row 0 is the top (max y).
            bb.max.y - (r as f64 + 0.5) * scale * 2.0,
        )
    };
    let to_cell = |p: Point| -> (usize, usize) {
        let c = (((p.x - bb.min.x) / scale) as isize).clamp(0, cols as isize - 1) as usize;
        let r = (((bb.max.y - p.y) / (scale * 2.0)) as isize).clamp(0, rows as isize - 1) as usize;
        (c, r)
    };

    let mut grid = vec![vec![' '; cols]; rows];
    for (r, row) in grid.iter_mut().enumerate() {
        for (c, cell) in row.iter_mut().enumerate() {
            let p = to_world(c, r);
            *cell = match env.locate(floor, p) {
                // Boundary cells become '#'.
                Some(pid) if env.partition(pid).polygon.boundary_dist(p) < scale => '#',
                Some(_) => '.',
                None => ' ',
            };
        }
    }

    // Partition labels: semantic tag at the centroid.
    for &pid in &env.floor(floor).partitions {
        let part = env.partition(pid);
        let (c, r) = to_cell(part.centroid());
        grid[r][c] = part.semantic.tag();
    }

    // Doors and openings.
    for d in env.doors_on(floor) {
        let (c, r) = to_cell(d.position);
        grid[r][c] = match d.kind {
            DoorKind::Door => 'D',
            DoorKind::Opening => '=',
        };
    }

    // Trajectories (drawn before objects/devices so markers stay visible).
    for tr in &overlay.trajectories {
        for p in tr {
            let (c, r) = to_cell(*p);
            if grid[r][c] == '.' {
                grid[r][c] = '+';
            }
        }
    }

    // Devices.
    for p in &overlay.devices {
        let (c, r) = to_cell(*p);
        grid[r][c] = '@';
    }

    // Objects: crowd members show the crowd digit, outliers 'x'.
    for (p, crowd) in &overlay.objects {
        let (c, r) = to_cell(*p);
        grid[r][c] = match crowd {
            Some(k) => char::from_digit((*k % 10) as u32, 10).unwrap_or('o'),
            None => 'x',
        };
    }

    let mut out = String::with_capacity(rows * (cols + 1));
    for row in grid {
        let line: String = row.into_iter().collect();
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Render a floor to a standalone SVG document.
pub fn svg_floor(
    env: &IndoorEnvironment,
    floor: FloorId,
    px_per_m: f64,
    overlay: &Overlay,
) -> String {
    let px = px_per_m.clamp(1.0, 100.0);
    let mut bb = vita_geometry::Aabb::empty();
    for &pid in &env.floor(floor).partitions {
        bb = bb.union(&env.partition(pid).polygon.bbox());
    }
    let margin = 1.0;
    bb = bb.inflated(margin);
    let w = (bb.width() * px).ceil();
    let h = (bb.height() * px).ceil();
    let tx = |p: Point| -> (f64, f64) {
        ((p.x - bb.min.x) * px, (bb.max.y - p.y) * px) // y-flip
    };

    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#
    );
    let _ = writeln!(s, r#"<rect width="{w}" height="{h}" fill="white"/>"#);

    // Partitions.
    for &pid in &env.floor(floor).partitions {
        let part = env.partition(pid);
        let pts: Vec<String> = part
            .polygon
            .vertices()
            .iter()
            .map(|&v| {
                let (x, y) = tx(v);
                format!("{x:.1},{y:.1}")
            })
            .collect();
        let fill = semantic_fill(part.semantic);
        let _ = writeln!(
            s,
            r#"<polygon points="{}" fill="{fill}" stroke="black" stroke-width="1.5"/>"#,
            pts.join(" ")
        );
        let (cx, cy) = tx(part.centroid());
        let _ = writeln!(
            s,
            r##"<text x="{cx:.1}" y="{cy:.1}" font-size="9" text-anchor="middle" fill="#333">{}</text>"##,
            xml_escape(&part.name)
        );
    }

    // Doors.
    for d in env.doors_on(floor) {
        let (x, y) = tx(d.position);
        let (color, r) = match d.kind {
            DoorKind::Door => ("saddlebrown", 3.5),
            DoorKind::Opening => ("silver", 2.0),
        };
        let _ = writeln!(
            s,
            r#"<circle cx="{x:.1}" cy="{y:.1}" r="{r}" fill="{color}"/>"#
        );
    }

    // Trajectories.
    for tr in &overlay.trajectories {
        if tr.len() < 2 {
            continue;
        }
        let pts: Vec<String> = tr
            .iter()
            .map(|&p| {
                let (x, y) = tx(p);
                format!("{x:.1},{y:.1}")
            })
            .collect();
        let _ = writeln!(
            s,
            r#"<polyline points="{}" fill="none" stroke="steelblue" stroke-width="1" opacity="0.7"/>"#,
            pts.join(" ")
        );
    }

    // Devices (triangles, like AP icons).
    for p in &overlay.devices {
        let (x, y) = tx(*p);
        let _ = writeln!(
            s,
            r#"<polygon points="{:.1},{:.1} {:.1},{:.1} {:.1},{:.1}" fill="crimson"/>"#,
            x,
            y - 5.0,
            x - 4.5,
            y + 4.0,
            x + 4.5,
            y + 4.0
        );
    }

    // Objects: circles for crowd members (per-crowd hue), squares for
    // outliers — Fig. 3(b)'s visual vocabulary.
    for (p, crowd) in &overlay.objects {
        let (x, y) = tx(*p);
        match crowd {
            Some(k) => {
                let hue = (k * 77) % 360;
                let _ = writeln!(
                    s,
                    r#"<circle cx="{x:.1}" cy="{y:.1}" r="2.5" fill="hsl({hue},70%,45%)"/>"#
                );
            }
            None => {
                let _ = writeln!(
                    s,
                    r#"<rect x="{:.1}" y="{:.1}" width="4" height="4" fill="black"/>"#,
                    x - 2.0,
                    y - 2.0
                );
            }
        }
    }

    s.push_str("</svg>\n");
    s
}

fn semantic_fill(s: vita_indoor::Semantic) -> &'static str {
    use vita_indoor::Semantic::*;
    match s {
        Corridor => "#f2f2e9",
        Canteen => "#ffe8c2",
        PublicArea => "#e4f0e2",
        Shop => "#e0ecf8",
        Staircase => "#ddd5e8",
        MedicalRoom => "#fbe4e4",
        Waiting => "#f8f0d8",
        Meeting => "#e8e8f8",
        Office => "#eef4fa",
        Room => "#f7f7f7",
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vita_dbi::{office, SynthParams};
    use vita_indoor::{build_environment, BuildParams};

    fn env() -> IndoorEnvironment {
        build_environment(
            &office(&SynthParams::with_floors(1)),
            &BuildParams::default(),
        )
        .unwrap()
        .env
    }

    #[test]
    fn ascii_contains_structure_markers() {
        let env = env();
        let art = ascii_floor(&env, FloorId(0), 100, &Overlay::default());
        assert!(art.contains('#'), "no walls drawn");
        assert!(art.contains('D'), "no doors drawn");
        assert!(art.contains('='), "no openings drawn");
        assert!(art.contains('K'), "no canteen tag");
        assert!(art.lines().count() > 5);
    }

    #[test]
    fn ascii_overlay_markers() {
        let env = env();
        let overlay = Overlay {
            devices: vec![Point::new(21.0, 12.0)],
            objects: vec![
                (Point::new(3.0, 3.0), Some(0)),
                (Point::new(9.0, 3.0), None),
            ],
            trajectories: vec![],
        };
        let art = ascii_floor(&env, FloorId(0), 100, &overlay);
        assert!(art.contains('@'), "device marker missing");
        assert!(art.contains('0'), "crowd marker missing");
        assert!(art.contains('x'), "outlier marker missing");
    }

    #[test]
    fn svg_is_well_formed_and_annotated() {
        let env = env();
        let overlay = Overlay {
            devices: vec![Point::new(21.0, 12.0)],
            objects: vec![
                (Point::new(3.0, 3.0), Some(2)),
                (Point::new(9.0, 3.0), None),
            ],
            trajectories: vec![vec![Point::new(1.0, 12.0), Point::new(20.0, 12.0)]],
        };
        let svg = svg_floor(&env, FloorId(0), 10.0, &overlay);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("<polygon"));
        assert!(svg.contains("Canteen"));
        assert!(svg.contains("crimson")); // device
        assert!(svg.contains("hsl(")); // crowd member
        assert!(svg.contains("<polyline")); // trajectory

        // Balanced tags.
        assert_eq!(svg.matches("<svg").count(), 1);
        assert_eq!(svg.matches("</svg>").count(), 1);
    }

    #[test]
    fn xml_escaping() {
        assert_eq!(xml_escape("A&B<C>"), "A&amp;B&lt;C&gt;");
    }

    #[test]
    fn ascii_width_clamped() {
        let env = env();
        let art = ascii_floor(&env, FloorId(0), 5, &Overlay::default());
        let max_line = art.lines().map(|l| l.len()).max().unwrap_or(0);
        assert!(max_line <= 20);
        let art = ascii_floor(&env, FloorId(0), 9999, &Overlay::default());
        let max_line = art.lines().map(|l| l.len()).max().unwrap_or(0);
        assert!(max_line <= 300);
    }
}
