//! The Vita toolkit facade: the three-layer Producer of paper Fig. 2 wired
//! to the Interface (DBI Processor + Configuration Loader) and Storage.
//!
//! The six-step demo flow (paper §5) maps onto this API:
//!
//! 1. Import a DBI file                       → [`Vita::from_dbi_text`]
//! 2. View/modify the host environment        → [`Vita::env`] / [`Vita::env_mut`]
//! 3. Configure and generate devices          → [`Vita::deploy_devices`]
//! 4. Configure and generate moving objects   → [`Vita::generate_objects`]
//! 5. Configure and generate raw RSSI         → [`Vita::generate_rssi`]
//! 6. Choose a positioning method, generate   → [`Vita::run_positioning`]
//!
//! All products are kept in the embedded [`Repository`] and returned to the
//! caller.

use vita_dbi::LoadedDbi;
use vita_devices::{deploy, DeploymentModel, DeviceRegistry, DeviceSpec};
use vita_indoor::{build_environment, BuildParams, FloorId, IndoorEnvironment};
use vita_mobility::{GenerationResult, MobilityConfig};
use vita_positioning::{run_positioning, MethodConfig, PmcError, PositioningData};
use vita_rssi::{generate_rssi, RssiConfig, RssiStore};
use vita_storage::Repository;

/// Errors from assembling or running the pipeline.
#[derive(Debug)]
pub enum VitaError {
    Dbi(vita_dbi::LoadError),
    Build(vita_indoor::BuildError),
    Mobility(vita_mobility::ConfigError),
    Positioning(PmcError),
    /// Step ordering violated (e.g. positioning before RSSI generation).
    MissingStage(&'static str),
}

impl std::fmt::Display for VitaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VitaError::Dbi(e) => write!(f, "DBI processing: {e}"),
            VitaError::Build(e) => write!(f, "environment construction: {e}"),
            VitaError::Mobility(e) => write!(f, "moving object layer: {e}"),
            VitaError::Positioning(e) => write!(f, "positioning layer: {e}"),
            VitaError::MissingStage(s) => write!(f, "pipeline stage missing: {s}"),
        }
    }
}

impl std::error::Error for VitaError {}

/// The toolkit: host environment + device registry + storage + the products
/// of each layer as they are generated.
pub struct Vita {
    env: IndoorEnvironment,
    devices: DeviceRegistry,
    repo: Repository,
    /// Warnings from DBI processing and environment construction.
    pub warnings: Vec<String>,
    last_generation: Option<GenerationResult>,
    last_rssi: Option<RssiStore>,
}

impl Vita {
    /// Step 1: import a DBI (STEP/IFC-subset) file.
    pub fn from_dbi_text(text: &str, params: &BuildParams) -> Result<Self, VitaError> {
        let loaded: LoadedDbi = vita_dbi::load_dbi(text).map_err(VitaError::Dbi)?;
        let mut warnings: Vec<String> = loaded
            .decode_issues
            .iter()
            .map(|i| format!("decode: {i}"))
            .chain(
                loaded
                    .repair
                    .findings
                    .iter()
                    .map(|f| format!("repair: {} {}", f.entity, f.kind)),
            )
            .collect();
        let built = build_environment(&loaded.model, params).map_err(VitaError::Build)?;
        warnings.extend(built.warnings.iter().map(|w| format!("build: {w}")));
        Ok(Vita {
            env: built.env,
            devices: DeviceRegistry::new(),
            repo: Repository::new(),
            warnings,
            last_generation: None,
            last_rssi: None,
        })
    }

    /// Build directly from an already-decoded model (skips parsing).
    pub fn from_model(model: &vita_dbi::DbiModel, params: &BuildParams) -> Result<Self, VitaError> {
        let built = build_environment(model, params).map_err(VitaError::Build)?;
        Ok(Vita {
            env: built.env,
            devices: DeviceRegistry::new(),
            repo: Repository::new(),
            warnings: built
                .warnings
                .iter()
                .map(|w| format!("build: {w}"))
                .collect(),
            last_generation: None,
            last_rssi: None,
        })
    }

    /// Step 2: inspect / customize the host environment.
    pub fn env(&self) -> &IndoorEnvironment {
        &self.env
    }

    pub fn env_mut(&mut self) -> &mut IndoorEnvironment {
        &mut self.env
    }

    /// Step 3: deploy positioning devices on a floor with a deployment
    /// model. Returns the number of devices placed.
    pub fn deploy_devices(
        &mut self,
        spec: DeviceSpec,
        floor: FloorId,
        model: DeploymentModel,
        count: usize,
    ) -> usize {
        deploy(&self.env, &mut self.devices, spec, floor, model, count).len()
    }

    /// Manual placement variant of step 3.
    pub fn place_device(
        &mut self,
        spec: DeviceSpec,
        floor: FloorId,
        position: vita_geometry::Point,
    ) -> vita_indoor::DeviceId {
        self.devices.place(spec, floor, position)
    }

    pub fn devices(&self) -> &DeviceRegistry {
        &self.devices
    }

    /// Step 4: generate moving objects and their raw trajectories.
    pub fn generate_objects(
        &mut self,
        cfg: &MobilityConfig,
    ) -> Result<&GenerationResult, VitaError> {
        let result = vita_mobility::generate(&self.env, cfg).map_err(VitaError::Mobility)?;
        self.repo
            .store_trajectories(result.trajectories.all_samples_time_ordered());
        self.last_generation = Some(result);
        Ok(self.last_generation.as_ref().unwrap())
    }

    /// Step 5: generate raw RSSI measurements from devices × trajectories.
    pub fn generate_rssi(&mut self, cfg: &RssiConfig) -> Result<&RssiStore, VitaError> {
        let gen = self
            .last_generation
            .as_ref()
            .ok_or(VitaError::MissingStage(
                "generate_objects must run before generate_rssi",
            ))?;
        let store = generate_rssi(&self.env, &self.devices, &gen.trajectories, cfg);
        self.repo.store_rssi(store.all().iter().copied());
        self.last_rssi = Some(store);
        Ok(self.last_rssi.as_ref().unwrap())
    }

    /// Step 6: run the chosen positioning method over the raw RSSI data.
    pub fn run_positioning(&mut self, method: &MethodConfig) -> Result<PositioningData, VitaError> {
        let rssi = self.last_rssi.as_ref().ok_or(VitaError::MissingStage(
            "generate_rssi must run before run_positioning",
        ))?;
        let data = run_positioning(&self.env, &self.devices, rssi, method)
            .map_err(VitaError::Positioning)?;
        match &data {
            PositioningData::Deterministic(fixes) => self.repo.store_fixes(fixes.iter().copied()),
            PositioningData::Proximity(records) => {
                self.repo.store_proximity(records.iter().copied())
            }
            PositioningData::Probabilistic(_) => {
                // Probabilistic fixes keep their full candidate sets in the
                // returned data; the repository stores their MAP estimates.
                if let PositioningData::Probabilistic(pfs) = &data {
                    let fixes: Vec<vita_positioning::Fix> = pfs
                        .iter()
                        .filter_map(|pf| {
                            pf.map_estimate().map(|(loc, _)| vita_positioning::Fix {
                                object: pf.object,
                                loc: *loc,
                                t: pf.t,
                            })
                        })
                        .collect();
                    self.repo.store_fixes(fixes);
                }
            }
        }
        Ok(data)
    }

    /// The products of the last generation (step 4), if any.
    pub fn generation(&self) -> Option<&GenerationResult> {
        self.last_generation.as_ref()
    }

    /// The raw RSSI data of the last step-5 run, if any.
    pub fn rssi(&self) -> Option<&RssiStore> {
        self.last_rssi.as_ref()
    }

    /// The storage repository with everything generated so far.
    pub fn repository(&self) -> &Repository {
        &self.repo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vita_dbi::{office, write_step, SynthParams};
    use vita_devices::DeviceType;
    use vita_indoor::Timestamp;
    use vita_mobility::LifespanConfig;
    use vita_positioning::{ProximityConfig, TrilaterationConfig};
    use vita_rssi::PathLossModel;

    fn toolkit() -> Vita {
        let text = write_step(&office(&SynthParams::with_floors(2)));
        Vita::from_dbi_text(&text, &BuildParams::default()).unwrap()
    }

    fn quick_mobility() -> MobilityConfig {
        MobilityConfig {
            object_count: 6,
            duration: Timestamp(60_000),
            lifespan: LifespanConfig {
                min: Timestamp(60_000),
                max: Timestamp(60_000),
            },
            seed: 77,
            ..Default::default()
        }
    }

    #[test]
    fn full_six_step_pipeline() {
        let mut vita = toolkit();
        assert_eq!(vita.env().summary().floors, 2);

        let placed = vita.deploy_devices(
            DeviceSpec::default_for(DeviceType::WiFi),
            FloorId(0),
            DeploymentModel::Coverage,
            8,
        );
        assert_eq!(placed, 8);

        let gen = vita.generate_objects(&quick_mobility()).unwrap();
        assert_eq!(gen.stats.objects, 6);
        let samples = gen.stats.samples;
        assert!(samples > 0);

        let rssi_cfg = RssiConfig {
            duration: Timestamp(60_000),
            ..Default::default()
        };
        let rssi = vita.generate_rssi(&rssi_cfg).unwrap();
        assert!(!rssi.is_empty());
        let rssi_count = rssi.len();

        let method = MethodConfig::Trilateration {
            config: TrilaterationConfig::default(),
            conversion_model: PathLossModel::default(),
        };
        let data = vita.run_positioning(&method).unwrap();
        assert!(!data.is_empty());

        // Storage holds all products.
        let (t, r, f, _) = vita.repository().counts();
        assert_eq!(t, samples);
        assert_eq!(r, rssi_count);
        assert_eq!(f, data.len());
    }

    #[test]
    fn stage_ordering_enforced() {
        let mut vita = toolkit();
        let rssi_cfg = RssiConfig::default();
        assert!(matches!(
            vita.generate_rssi(&rssi_cfg),
            Err(VitaError::MissingStage(_))
        ));
        let method = MethodConfig::Proximity(ProximityConfig::default());
        assert!(matches!(
            vita.run_positioning(&method),
            Err(VitaError::MissingStage(_))
        ));
    }

    #[test]
    fn proximity_results_stored_in_proximity_table() {
        let mut vita = toolkit();
        vita.deploy_devices(
            DeviceSpec::default_for(DeviceType::Rfid),
            FloorId(0),
            DeploymentModel::CheckPoint,
            6,
        );
        vita.generate_objects(&quick_mobility()).unwrap();
        vita.generate_rssi(&RssiConfig {
            duration: Timestamp(60_000),
            ..Default::default()
        })
        .unwrap();
        let data = vita
            .run_positioning(&MethodConfig::Proximity(ProximityConfig::default()))
            .unwrap();
        let (_, _, fixes, prox) = vita.repository().counts();
        assert_eq!(prox, data.len());
        assert_eq!(fixes, 0);
    }

    #[test]
    fn bad_dbi_is_reported() {
        assert!(matches!(
            Vita::from_dbi_text("garbage", &BuildParams::default()),
            Err(VitaError::Dbi(_))
        ));
    }

    #[test]
    fn obstacle_deployment_through_env_mut() {
        let mut vita = toolkit();
        let n_before = vita.env().obstacles().len();
        vita.env_mut().deploy_obstacle(
            FloorId(0),
            vita_geometry::Polygon::rect(10.0, 11.0, 12.0, 13.0),
            5.0,
        );
        assert_eq!(vita.env().obstacles().len(), n_before + 1);
    }
}
