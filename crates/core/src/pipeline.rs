//! The Vita toolkit facade: the three-layer Producer of paper Fig. 2 wired
//! to the Interface (DBI Processor + Configuration Loader) and Storage.
//!
//! The six-step demo flow (paper §5) maps onto this API:
//!
//! 1. Import a DBI file                       → [`Vita::from_dbi_text`]
//! 2. View/modify the host environment        → [`Vita::env`] / [`Vita::env_mut`]
//! 3. Configure and generate devices          → [`Vita::deploy_devices`]
//! 4. Configure and generate moving objects   → [`Vita::generate_objects`]
//! 5. Configure and generate raw RSSI         → [`Vita::generate_rssi`]
//! 6. Choose a positioning method, generate   → [`Vita::run_positioning`]
//!
//! All products are kept in the embedded storage repository
//! ([`vita_storage::AnyRepository`] — single or sharded backend, see
//! [`StreamOptions::backend`]) and returned to the caller.
//!
//! ## Streaming batched dataflow
//!
//! Steps 4–6 can also run as one concurrent pipeline via
//! [`Vita::run_streaming`]: mobility workers emit per-object trajectory
//! chunks over a bounded channel while stage workers generate that chunk's
//! RSSI, position it, and append every product to storage as owned batches
//! ([`vita_storage::ProductSink`]). No layer materializes the whole run —
//! peak memory is bounded by the channel capacity — and for a fixed seed
//! the repository contents and fix sets are identical to the step-by-step
//! path (the step methods are thin wrappers over the same sinks).
//!
//! ## Multi-scenario concurrency
//!
//! [`Vita::run_many`] schedules several scenarios through one toolkit at
//! once: N mobility producers feed one shared stage-worker pool, every
//! product batch is tagged with its run's [`RunId`], and the repository
//! answers both all-runs and per-run queries afterwards. RNG streams are
//! derived from `(base seed, run id)` ([`derive_run_seed`]), so each run's
//! row sets are bit-identical to running its scenario alone
//! ([`Vita::run_streaming_as`]) no matter how the runs interleave.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use vita_dbi::LoadedDbi;
use vita_devices::{deploy, DeploymentModel, DeviceRegistry, DeviceSpec};
use vita_indoor::{build_environment, BuildParams, FloorId, IndoorEnvironment, RunId};
use vita_mobility::{
    GenerationResult, GenerationStats, MobilityConfig, StreamedGeneration, TrajectoryChunk,
};
use vita_positioning::{
    run_positioning, ChunkPositioner, Fix, MethodConfig, PmcError, PositioningData, ProbFix,
};
use vita_rssi::{generate_rssi, RssiConfig, RssiGenerator, RssiStore};
use vita_storage::{
    AnyRepository, CodecError, ProductBatch, ProductSink, RepositoryExport, ShardCounts,
    StorageBackend,
};

/// Errors from assembling or running the pipeline.
#[derive(Debug)]
pub enum VitaError {
    Dbi(vita_dbi::LoadError),
    Build(vita_indoor::BuildError),
    Mobility(vita_mobility::ConfigError),
    Positioning(PmcError),
    /// Step ordering violated (e.g. positioning before RSSI generation).
    MissingStage(&'static str),
    /// [`Vita::run_many`] scenarios disagree on the storage backend: all
    /// concurrent runs ingest into one shared repository, so they must
    /// request the same [`StorageBackend`].
    MixedBackends,
    /// A [`Vita::load_from`] table file failed to decode (corrupt,
    /// truncated, or not a Vita data file).
    Codec(CodecError),
    /// File IO under [`Vita::save_to`] / [`Vita::load_from`] failed.
    Io(std::io::Error),
}

impl std::fmt::Display for VitaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VitaError::Dbi(e) => write!(f, "DBI processing: {e}"),
            VitaError::Build(e) => write!(f, "environment construction: {e}"),
            VitaError::Mobility(e) => write!(f, "moving object layer: {e}"),
            VitaError::Positioning(e) => write!(f, "positioning layer: {e}"),
            VitaError::MissingStage(s) => write!(f, "pipeline stage missing: {s}"),
            VitaError::MixedBackends => write!(
                f,
                "run_many scenarios request different storage backends for one shared repository"
            ),
            VitaError::Codec(e) => write!(f, "storage decode: {e}"),
            VitaError::Io(e) => write!(f, "storage file IO: {e}"),
        }
    }
}

impl std::error::Error for VitaError {}

/// The toolkit: host environment + device registry + storage + the products
/// of each layer as they are generated.
pub struct Vita {
    env: IndoorEnvironment,
    devices: DeviceRegistry,
    repo: Arc<AnyRepository>,
    /// Warnings from DBI processing and environment construction.
    pub warnings: Vec<String>,
    last_generation: Option<GenerationResult>,
    last_rssi: Option<RssiStore>,
}

impl Vita {
    /// Step 1: import a DBI (STEP/IFC-subset) file.
    pub fn from_dbi_text(text: &str, params: &BuildParams) -> Result<Self, VitaError> {
        let loaded: LoadedDbi = vita_dbi::load_dbi(text).map_err(VitaError::Dbi)?;
        let mut warnings: Vec<String> = loaded
            .decode_issues
            .iter()
            .map(|i| format!("decode: {i}"))
            .chain(
                loaded
                    .repair
                    .findings
                    .iter()
                    .map(|f| format!("repair: {} {}", f.entity, f.kind)),
            )
            .collect();
        let built = build_environment(&loaded.model, params).map_err(VitaError::Build)?;
        warnings.extend(built.warnings.iter().map(|w| format!("build: {w}")));
        Ok(Vita {
            env: built.env,
            devices: DeviceRegistry::new(),
            repo: Arc::new(AnyRepository::default()),
            warnings,
            last_generation: None,
            last_rssi: None,
        })
    }

    /// Build directly from an already-decoded model (skips parsing).
    pub fn from_model(model: &vita_dbi::DbiModel, params: &BuildParams) -> Result<Self, VitaError> {
        let built = build_environment(model, params).map_err(VitaError::Build)?;
        Ok(Vita {
            env: built.env,
            devices: DeviceRegistry::new(),
            repo: Arc::new(AnyRepository::default()),
            warnings: built
                .warnings
                .iter()
                .map(|w| format!("build: {w}"))
                .collect(),
            last_generation: None,
            last_rssi: None,
        })
    }

    /// Construction-time storage backend selection: consume the toolkit
    /// and return it with its (still empty) repository in the requested
    /// shape. Free at this point — nothing has been ingested yet, so no
    /// rows are re-partitioned — which is why this is the preferred way to
    /// pick a backend, over migrating later with
    /// [`Vita::migrate_backend`].
    ///
    /// # Examples
    ///
    /// ```
    /// use vita_core::prelude::*;
    ///
    /// let dbi = vita_dbi::write_step(&vita_dbi::office(&SynthParams::with_floors(1)));
    /// let vita = Vita::from_dbi_text(&dbi, &BuildParams::default())
    ///     .unwrap()
    ///     .with_backend(StorageBackend::Sharded { shards: 4 });
    /// assert!(matches!(
    ///     vita.repository().backend(),
    ///     StorageBackend::Sharded { shards: 4 }
    /// ));
    /// ```
    #[must_use]
    pub fn with_backend(mut self, backend: StorageBackend) -> Self {
        apply_backend(&mut self.repo, backend);
        self
    }

    /// Step 2: inspect / customize the host environment.
    pub fn env(&self) -> &IndoorEnvironment {
        &self.env
    }

    pub fn env_mut(&mut self) -> &mut IndoorEnvironment {
        &mut self.env
    }

    /// Step 3: deploy positioning devices on a floor with a deployment
    /// model. Returns the number of devices placed.
    pub fn deploy_devices(
        &mut self,
        spec: DeviceSpec,
        floor: FloorId,
        model: DeploymentModel,
        count: usize,
    ) -> usize {
        deploy(&self.env, &mut self.devices, spec, floor, model, count).len()
    }

    /// Manual placement variant of step 3.
    pub fn place_device(
        &mut self,
        spec: DeviceSpec,
        floor: FloorId,
        position: vita_geometry::Point,
    ) -> vita_indoor::DeviceId {
        self.devices.place(spec, floor, position)
    }

    pub fn devices(&self) -> &DeviceRegistry {
        &self.devices
    }

    /// Step 4: generate moving objects and their raw trajectories.
    pub fn generate_objects(
        &mut self,
        cfg: &MobilityConfig,
    ) -> Result<&GenerationResult, VitaError> {
        let result = vita_mobility::generate(&self.env, cfg).map_err(VitaError::Mobility)?;
        self.repo.accept(ProductBatch::Trajectories(
            result.trajectories.all_samples_time_ordered(),
        ));
        self.last_generation = Some(result);
        Ok(self.last_generation.as_ref().unwrap()) // audit: allow(R4) invariant: assigned Some on the previous line
    }

    /// Step 5: generate raw RSSI measurements from devices × trajectories.
    pub fn generate_rssi(&mut self, cfg: &RssiConfig) -> Result<&RssiStore, VitaError> {
        let gen = self
            .last_generation
            .as_ref()
            .ok_or(VitaError::MissingStage(
                "generate_objects must run before generate_rssi",
            ))?;
        let store = generate_rssi(&self.env, &self.devices, &gen.trajectories, cfg);
        self.repo.accept(ProductBatch::Rssi(store.all().to_vec()));
        self.last_rssi = Some(store);
        Ok(self.last_rssi.as_ref().unwrap()) // audit: allow(R4) invariant: assigned Some on the previous line
    }

    /// Step 6: run the chosen positioning method over the raw RSSI data.
    pub fn run_positioning(&mut self, method: &MethodConfig) -> Result<PositioningData, VitaError> {
        let rssi = self.last_rssi.as_ref().ok_or(VitaError::MissingStage(
            "generate_rssi must run before run_positioning",
        ))?;
        let data = run_positioning(&self.env, &self.devices, rssi, method)
            .map_err(VitaError::Positioning)?;
        self.repo.accept(positioning_batch_ref(&data));
        Ok(data)
    }

    /// Steps 4–6 as one streaming batched dataflow: mobility simulation
    /// workers produce per-object trajectory chunks into a bounded channel
    /// while stage workers concurrently generate each chunk's RSSI, run the
    /// positioning method on it, and append all three products to the
    /// repository as owned batches.
    ///
    /// For a fixed seed the resulting repository contents (counts and fix
    /// sets) are identical to running [`Vita::generate_objects`] →
    /// [`Vita::generate_rssi`] → [`Vita::run_positioning`], but no stage
    /// ever materializes a whole run: peak in-flight data is bounded by
    /// `options.channel_capacity` chunks (see
    /// [`PipelineReport::peak_in_flight_samples`]).
    ///
    /// Devices must already be deployed (step 3). The step-path products
    /// ([`Vita::generation`], [`Vita::rssi`]) are *not* materialized by
    /// this entry point — query the repository instead.
    ///
    /// `scenario.options.backend` picks the storage backend the run
    /// ingests into: with [`StorageBackend::Sharded`], batches route by
    /// object-id hash to per-shard locks, so concurrent stage workers stop
    /// contending on one lock per table (the repository is switched via
    /// [`Vita::migrate_backend`] before any worker starts).
    ///
    /// The run ingests as [`RunId::DEFAULT`] — equivalent to
    /// [`Vita::run_streaming_as`] with run 0, and to a one-scenario
    /// [`Vita::run_many`] on a fresh toolkit. Like the step-path methods,
    /// repeated calls **merge** into the repository — all under run 0 —
    /// so run-scoped queries see their union. To keep successive runs
    /// isolated, schedule them with [`Vita::run_many`] (which allocates
    /// fresh run ids past every stored run) or pick explicit distinct ids
    /// with [`Vita::run_streaming_as`].
    ///
    /// # Examples
    ///
    /// ```
    /// use vita_core::prelude::*;
    ///
    /// let dbi = vita_dbi::write_step(&vita_dbi::office(&SynthParams::with_floors(1)));
    /// let mut vita = Vita::from_dbi_text(&dbi, &BuildParams::default()).unwrap();
    /// vita.deploy_devices(
    ///     DeviceSpec::default_for(DeviceType::WiFi),
    ///     FloorId(0),
    ///     DeploymentModel::Coverage,
    ///     8,
    /// );
    /// let scenario = ScenarioConfig {
    ///     mobility: MobilityConfig {
    ///         object_count: 4,
    ///         duration: Timestamp(20_000),
    ///         lifespan: LifespanConfig { min: Timestamp(20_000), max: Timestamp(20_000) },
    ///         ..Default::default()
    ///     },
    ///     rssi: RssiConfig { duration: Timestamp(20_000), ..Default::default() },
    ///     method: MethodConfig::Trilateration {
    ///         config: TrilaterationConfig::default(),
    ///         conversion_model: PathLossModel::default(),
    ///     },
    ///     options: StreamOptions::default(),
    /// };
    /// let report = vita.run_streaming(&scenario).unwrap();
    /// assert_eq!(report.chunks, 4); // one chunk per object
    /// assert_eq!(
    ///     vita.repository().counts(RunScope::All).trajectories,
    ///     report.stats.samples,
    /// );
    /// ```
    pub fn run_streaming(
        &mut self,
        scenario: &ScenarioConfig,
    ) -> Result<PipelineReport, VitaError> {
        self.run_streaming_as(RunId::DEFAULT, scenario)
    }

    /// [`Vita::run_streaming`], ingesting under an explicit [`RunId`]: the
    /// solo counterpart of one lane of [`Vita::run_many`]. Because every
    /// run's RNG streams are derived from `(base seed, run id)` (see
    /// [`derive_run_seed`]), running a scenario alone as run `r` produces
    /// row sets bit-identical to the same scenario scheduled as run `r`
    /// among concurrent runs — the property the `run_many_parity` test
    /// suite pins down.
    ///
    /// The run id is taken as given: ingesting under an id that already
    /// has rows **merges** with them (exactly like repeated
    /// [`Vita::run_streaming`] calls merge under run 0). Use
    /// [`Vita::run_many`] when fresh, non-colliding ids should be
    /// allocated automatically.
    pub fn run_streaming_as(
        &mut self,
        run: RunId,
        scenario: &ScenarioConfig,
    ) -> Result<PipelineReport, VitaError> {
        let start = Instant::now();
        let runs = [(run, scenario)];
        // Validate + build stage contexts before touching the repository:
        // a rejected scenario must leave storage exactly as it was,
        // including its backend shape.
        let contexts = build_contexts(&self.env, &self.devices, &runs)?;
        apply_backend(&mut self.repo, scenario.options.backend.clone());
        let mut reports = self.stream_runs(start, &runs, &contexts)?;
        Ok(reports.pop().expect("one report per run")) // audit: allow(R4) invariant: stream_runs returns exactly one report per scheduled run
    }

    /// Run several scenarios concurrently through this toolkit — the
    /// multi-scenario step of the ROADMAP: same host environment and
    /// devices, different mobility/RSSI/method configurations — sharing
    /// one stage-worker pool and one repository. Scenario `i` ingests as
    /// `RunId(base + i)`, where `base` is one past the highest run id
    /// already in the repository (0 for a fresh toolkit), so successive
    /// schedules never collide with earlier runs' rows; read each run's
    /// assigned id from its report ([`PipelineReport::run`]) and query its
    /// products in isolation by scoping any repository query to it (e.g.
    /// [`vita_storage::AnyRepository::fixes`] with `run.into()`).
    ///
    /// ## Determinism
    ///
    /// Each run's mobility and RSSI RNG streams are seeded from
    /// `(base seed, run id)` via [`derive_run_seed`], and every downstream
    /// product is derived per trajectory chunk, so per-run row sets are
    /// bit-identical to running each scenario alone with
    /// [`Vita::run_streaming_as`] at the same run id — regardless of how
    /// the scheduler interleaves the runs' chunks. (The run *id* is part
    /// of the derivation, so a schedule on a non-empty repository — where
    /// ids offset past existing runs — reproduces only at the same ids.)
    ///
    /// ## One shared pool
    ///
    /// All scenarios must request the same `options.backend` (they share
    /// the repository); otherwise [`VitaError::MixedBackends`] is returned
    /// before anything is ingested. An empty slice returns no reports.
    /// The other [`StreamOptions`] are coalesced across scenarios — the
    /// schedule uses the **maximum** requested `workers` and
    /// `channel_capacity` — because one worker pool and one chunk channel
    /// serve every run: a single run's tighter `channel_capacity` does not
    /// bound the shared schedule (schedule it alone via
    /// [`Vita::run_streaming_as`] if its in-flight bound must hold
    /// exactly).
    ///
    /// # Examples
    ///
    /// ```
    /// use vita_core::prelude::*;
    ///
    /// let dbi = vita_dbi::write_step(&vita_dbi::office(&SynthParams::with_floors(1)));
    /// let mut vita = Vita::from_dbi_text(&dbi, &BuildParams::default()).unwrap();
    /// vita.deploy_devices(
    ///     DeviceSpec::default_for(DeviceType::WiFi),
    ///     FloorId(0),
    ///     DeploymentModel::Coverage,
    ///     8,
    /// );
    /// let base = ScenarioConfig {
    ///     mobility: MobilityConfig {
    ///         object_count: 3,
    ///         duration: Timestamp(20_000),
    ///         lifespan: LifespanConfig { min: Timestamp(20_000), max: Timestamp(20_000) },
    ///         ..Default::default()
    ///     },
    ///     rssi: RssiConfig { duration: Timestamp(20_000), ..Default::default() },
    ///     method: MethodConfig::Trilateration {
    ///         config: TrilaterationConfig::default(),
    ///         conversion_model: PathLossModel::default(),
    ///     },
    ///     options: StreamOptions::default(),
    /// };
    /// let mut second = base.clone();
    /// second.mobility.object_count = 5;
    /// let reports = vita.run_many(&[base, second]).unwrap();
    /// assert_eq!(reports.len(), 2);
    /// assert_eq!(reports[1].run, RunId(1));
    /// // Each run's rows are tagged and queryable in isolation.
    /// let run1 = vita.repository().trajectories(RunId(1).into());
    /// assert_eq!(run1.len(), reports[1].stats.samples);
    /// ```
    pub fn run_many(
        &mut self,
        scenarios: &[ScenarioConfig],
    ) -> Result<Vec<PipelineReport>, VitaError> {
        let Some(first) = scenarios.first() else {
            return Ok(Vec::new());
        };
        if scenarios
            .iter()
            .any(|s| s.options.backend != first.options.backend)
        {
            return Err(VitaError::MixedBackends);
        }
        let start = Instant::now();
        // Allocate run ids past every run already stored, so repeated
        // schedules (or a prior `run_streaming`, which is run 0) never
        // alias earlier runs' rows.
        let base = self.repo.run_ids().last().map_or(0, |r| r.0 + 1);
        let runs: Vec<(RunId, &ScenarioConfig)> = scenarios
            .iter()
            .enumerate()
            .map(|(i, s)| (RunId(base + i as u32), s))
            .collect();
        // Validate + build stage contexts before touching the repository
        // (see `run_streaming_as`).
        let contexts = build_contexts(&self.env, &self.devices, &runs)?;
        apply_backend(&mut self.repo, first.options.backend.clone());
        self.stream_runs(start, &runs, &contexts)
    }

    /// The scheduling engine behind [`Vita::run_streaming`] and
    /// [`Vita::run_many`]: N mobility producers and one shared stage-worker
    /// pool over one repository, with per-run contexts prebuilt by
    /// [`build_contexts`].
    ///
    /// Takes `&self` on purpose — backend selection (the only mutation) is
    /// split into [`apply_backend`] / [`Vita::migrate_backend`], which
    /// callers apply before scheduling, so the concurrent machinery needs
    /// no exclusive access to the toolkit.
    /// `start` is captured by the public entry point before validation and
    /// context building, so `PipelineReport::elapsed` covers the whole
    /// call — including positioner setup (radio-map survey) — exactly as
    /// the pre-`run_many` `run_streaming` measured it (the E11 baselines
    /// compare on those semantics).
    fn stream_runs(
        &self,
        start: Instant,
        runs: &[(RunId, &ScenarioConfig)],
        contexts: &[RunContext<'_>],
    ) -> Result<Vec<PipelineReport>, VitaError> {
        // Split the core budget between the two pools: stage workers here,
        // simulation workers inside the mobility producers. Sizing both to
        // the full core count would oversubscribe the machine 2×; with N
        // producers the simulation share is divided among them.
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let workers = runs
            .iter()
            .map(|(_, s)| {
                if s.options.workers == 0 {
                    (cores / 2).max(1)
                } else {
                    s.options.workers
                }
            })
            .max()
            .unwrap_or(1);
        let sim_workers = (cores.saturating_sub(workers).max(1) / runs.len().max(1)).max(1);
        let capacity = runs
            .iter()
            .map(|(_, s)| s.options.channel_capacity)
            .max()
            .unwrap_or(1)
            .max(1);

        let repo = &self.repo;
        let counters: Vec<StreamCounters> =
            runs.iter().map(|_| StreamCounters::default()).collect();
        let results: Vec<Result<StreamedGeneration, vita_mobility::ConfigError>> =
            std::thread::scope(|scope| {
                let (tx, rx) = mpsc::sync_channel::<(usize, TrajectoryChunk)>(capacity);
                let rx = Arc::new(Mutex::new(rx));
                for _ in 0..workers {
                    let rx = Arc::clone(&rx);
                    let contexts = &contexts;
                    let counters = &counters;
                    scope.spawn(move || loop {
                        // Hold the lock only for the receive; processing
                        // runs unlocked so workers overlap.
                        let msg = rx.lock().expect("receiver lock").recv(); // audit: allow(R4) operational: a poisoned receiver mutex means a stage worker already panicked
                        let Ok((idx, chunk)) = msg else {
                            return; // producers done, queue drained
                        };
                        let ctx: &RunContext<'_> = &contexts[idx];
                        let c = &counters[idx];
                        let measurements = ctx
                            .rssi_gen
                            .measure_trajectory(chunk.object, &chunk.trajectory);
                        let store = RssiStore::new(measurements);
                        let data = ctx.positioner.position(&store);

                        let samples = chunk.trajectory.into_samples();
                        let n_samples = samples.len();
                        c.rssi_rows.fetch_add(store.len(), Ordering::Relaxed);
                        let positioning = positioning_batch(data);
                        c.positioning_rows
                            .fetch_add(positioning.len(), Ordering::Relaxed);
                        repo.accept_run(ctx.run, ProductBatch::Trajectories(samples));
                        repo.accept_run(ctx.run, ProductBatch::Rssi(store.into_measurements()));
                        repo.accept_run(ctx.run, positioning);
                        c.in_flight.fetch_sub(n_samples, Ordering::Relaxed);
                    });
                }

                // One producer thread per run; `send` applies backpressure
                // when all workers are busy and the shared channel is full.
                // Each producer's own channel gets capacity 1: buffering
                // there would be redundant with the pipeline's channel and
                // would hold chunks the in-flight counters cannot see yet.
                let mut handles = Vec::with_capacity(contexts.len());
                for (idx, ctx) in contexts.iter().enumerate() {
                    let tx = tx.clone();
                    let counters = &counters;
                    let env = &self.env;
                    handles.push(scope.spawn(move || {
                        let producer = vita_mobility::ChunkStreaming {
                            channel_capacity: 1,
                            max_workers: sim_workers,
                        };
                        vita_mobility::generate_streaming(env, &ctx.mobility, &producer, |chunk| {
                            let n = chunk.trajectory.len();
                            let c = &counters[idx];
                            c.chunks.fetch_add(1, Ordering::Relaxed);
                            let now = c.in_flight.fetch_add(n, Ordering::Relaxed) + n;
                            c.peak_in_flight.fetch_max(now, Ordering::Relaxed);
                            // audit: allow(R4) invariant: stage workers outlive producers inside this scope
                            tx.send((idx, chunk)).expect("stage workers alive");
                        })
                    }));
                }
                drop(tx);
                handles
                    .into_iter()
                    .map(|h| h.join().expect("producer thread")) // audit: allow(R4) operational: a panicked producer thread has already poisoned the run
                    .collect()
            });

        let mut streamed = Vec::with_capacity(results.len());
        for r in results {
            streamed.push(r.map_err(VitaError::Mobility)?);
        }
        let shard_rows = self.repo.per_shard_counts();
        let elapsed = start.elapsed();
        Ok(runs
            .iter()
            .zip(streamed)
            .zip(counters)
            .map(|(((run, _), sg), c)| PipelineReport {
                run: *run,
                stats: sg.stats,
                chunks: c.chunks.into_inner(),
                rssi_rows: c.rssi_rows.into_inner(),
                positioning_rows: c.positioning_rows.into_inner(),
                peak_in_flight_samples: c.peak_in_flight.into_inner(),
                shard_rows: shard_rows.clone(),
                elapsed,
            })
            .collect())
    }

    /// Migrate the repository to a different storage backend. A no-op when
    /// the repository already has the requested shape; otherwise the new
    /// backend is installed and **every row already stored is re-ingested
    /// into it**, run by run (run tags survive the switch) — an O(rows)
    /// copy that also invalidates handles from [`Vita::serve`], which keep
    /// answering from the pre-migration repository. Prefer picking the
    /// backend up front with [`Vita::with_backend`] (free on an empty
    /// repository) and reserve this for repositories that must change
    /// shape mid-life. Row *sets* are unchanged — every query returns the
    /// same rows — but re-ingestion replays rows in scan order, so answers
    /// that expose arrival order among equal sort keys (scan, ties in
    /// `time_window`/kNN) may come back permuted relative to before the
    /// switch.
    pub fn migrate_backend(&mut self, backend: StorageBackend) {
        apply_backend(&mut self.repo, backend);
    }

    /// The products of the last generation (step 4), if any.
    pub fn generation(&self) -> Option<&GenerationResult> {
        self.last_generation.as_ref()
    }

    /// The raw RSSI data of the last step-5 run, if any.
    pub fn rssi(&self) -> Option<&RssiStore> {
        self.last_rssi.as_ref()
    }

    /// The storage repository with everything generated so far (either
    /// backend; see [`vita_storage::AnyRepository`] for the query surface).
    pub fn repository(&self) -> &AnyRepository {
        &self.repo
    }

    /// A shared handle on the repository, for readers that outlive a
    /// borrow of the toolkit — most notably query serving
    /// ([`Vita::serve`]): ingestion through `self` and queries through the
    /// handle target the same tables concurrently (per-table/per-shard
    /// read-write locks). A later [`Vita::migrate_backend`] installs a
    /// *new* repository; existing handles keep answering from the old one.
    pub fn repository_handle(&self) -> Arc<AnyRepository> {
        Arc::clone(&self.repo)
    }

    /// Attach a query front-end to this toolkit's repository: the returned
    /// [`vita_serve::QueryService`] answers typed
    /// [`vita_serve::QueryRequest`]s — cheaply cloneable across query
    /// worker threads — while [`Vita::run_streaming`] / [`Vita::run_many`]
    /// keep ingesting into the same repository.
    ///
    /// # Examples
    ///
    /// ```
    /// use vita_core::prelude::*;
    /// use vita_serve::{QueryRequest, QueryResponse};
    ///
    /// let dbi = vita_dbi::write_step(&vita_dbi::office(&SynthParams::with_floors(1)));
    /// let vita = Vita::from_dbi_text(&dbi, &BuildParams::default()).unwrap();
    /// let service = vita.serve();
    /// let QueryResponse::Counts(c) = service.execute(&QueryRequest::Counts {
    ///     scope: RunScope::All,
    /// }) else {
    ///     panic!("counts query answers with counts");
    /// };
    /// assert_eq!(c.total(), 0); // nothing ingested yet
    /// ```
    pub fn serve(&self) -> vita_serve::QueryService {
        vita_serve::QueryService::new(self.repository_handle())
    }

    /// Persist every stored data product to `dir` (created if missing) as
    /// the four table files of the versioned binary wire format —
    /// `trajectories.vita`, `rssi.vita`, `fixes.vita`, `proximity.vita`
    /// (see [`vita_storage::RepositoryExport::FILE_NAMES`]). The format is
    /// run-segmented, so a multi-run repository (e.g. after
    /// [`Vita::run_many`]) keeps its run tags on disk.
    ///
    /// # Examples
    ///
    /// ```
    /// use vita_core::prelude::*;
    ///
    /// let dbi = vita_dbi::write_step(&vita_dbi::office(&SynthParams::with_floors(1)));
    /// let mut vita = Vita::from_dbi_text(&dbi, &BuildParams::default()).unwrap();
    /// vita.deploy_devices(
    ///     DeviceSpec::default_for(DeviceType::WiFi),
    ///     FloorId(0),
    ///     DeploymentModel::Coverage,
    ///     8,
    /// );
    /// let scenario = ScenarioConfig {
    ///     mobility: MobilityConfig {
    ///         object_count: 2,
    ///         duration: Timestamp(10_000),
    ///         lifespan: LifespanConfig { min: Timestamp(10_000), max: Timestamp(10_000) },
    ///         ..Default::default()
    ///     },
    ///     rssi: RssiConfig { duration: Timestamp(10_000), ..Default::default() },
    ///     method: MethodConfig::Trilateration {
    ///         config: TrilaterationConfig::default(),
    ///         conversion_model: PathLossModel::default(),
    ///     },
    ///     options: StreamOptions::default(),
    /// };
    /// vita.run_streaming(&scenario).unwrap();
    ///
    /// let dir = std::env::temp_dir().join(format!("vita_doc_{}", std::process::id()));
    /// vita.save_to(&dir).unwrap();
    ///
    /// let mut restored = Vita::from_dbi_text(&dbi, &BuildParams::default()).unwrap();
    /// restored.load_from(&dir).unwrap();
    /// assert_eq!(
    ///     restored.repository().counts(RunScope::All),
    ///     vita.repository().counts(RunScope::All),
    /// );
    /// std::fs::remove_dir_all(&dir).unwrap();
    /// ```
    pub fn save_to(&self, dir: impl AsRef<std::path::Path>) -> Result<(), VitaError> {
        self.repo
            .export()
            .write_dir(dir.as_ref())
            .map_err(VitaError::Io)
    }

    /// Replace the repository contents with the four table files under
    /// `dir` (the layout [`Vita::save_to`] writes). The data lands in the
    /// **current** storage backend regardless of which backend exported it,
    /// and run tags are restored run by run — so save → switch backend →
    /// load preserves every run's row sets. Legacy v1-format files load
    /// with all rows in run 0. Step-path products ([`Vita::generation`],
    /// [`Vita::rssi`]) are untouched; on any error the repository keeps
    /// its previous contents.
    pub fn load_from(&mut self, dir: impl AsRef<std::path::Path>) -> Result<(), VitaError> {
        let export = RepositoryExport::read_dir(dir.as_ref()).map_err(VitaError::Io)?;
        self.repo = Arc::new(
            AnyRepository::import(&export, self.repo.backend()).map_err(VitaError::Codec)?,
        );
        Ok(())
    }
}

/// Everything one run needs at the stage workers: its derived mobility
/// config for the producer, and its RSSI generator + positioner (both
/// `Sync`, shared by all workers processing that run's chunks).
struct RunContext<'a> {
    run: RunId,
    mobility: MobilityConfig,
    rssi_gen: RssiGenerator<'a>,
    positioner: ChunkPositioner<'a>,
}

/// Validate every scheduled scenario and build its per-run stage context —
/// derived seeds ([`derive_run_seed`]), RSSI generator, positioner (radio
/// map included). Runs **before** the repository is touched, so a rejected
/// scenario leaves storage exactly as it was. A free function over the
/// environment/devices fields so callers can keep it disjoint from the
/// `&mut` repository borrow of [`apply_backend`].
fn build_contexts<'a>(
    env: &'a IndoorEnvironment,
    devices: &'a DeviceRegistry,
    runs: &[(RunId, &ScenarioConfig)],
) -> Result<Vec<RunContext<'a>>, VitaError> {
    let mut contexts: Vec<RunContext<'a>> = Vec::with_capacity(runs.len());
    for (run, scenario) in runs {
        let mut mobility = scenario.mobility.clone();
        mobility.seed = derive_run_seed(mobility.seed, *run);
        mobility.validate().map_err(VitaError::Mobility)?;
        let mut rssi_cfg = scenario.rssi;
        rssi_cfg.seed = derive_run_seed(rssi_cfg.seed, *run);
        contexts.push(RunContext {
            run: *run,
            mobility,
            rssi_gen: RssiGenerator::new(env, devices, &rssi_cfg),
            positioner: ChunkPositioner::new(env, devices, &scenario.method)
                .map_err(VitaError::Positioning)?,
        });
    }
    Ok(contexts)
}

/// [`Vita::migrate_backend`] over the bare repository handle (free
/// function so the scheduling entry points can apply it while per-run
/// contexts hold borrows of the environment/devices fields). Installs a
/// **fresh** repository behind a fresh [`Arc`]: live [`Vita::serve`]
/// handles keep the old one alive and keep answering from it.
fn apply_backend(repo: &mut Arc<AnyRepository>, backend: StorageBackend) {
    if repo.backend() == backend {
        return;
    }
    let old = std::mem::replace(repo, Arc::new(AnyRepository::new(backend)));
    for run in old.run_ids() {
        repo.accept_run(
            run,
            ProductBatch::Trajectories(old.trajectories(run.into())),
        );
        repo.accept_run(run, ProductBatch::Rssi(old.rssi(run.into())));
        repo.accept_run(run, ProductBatch::Fixes(old.fixes(run.into())));
        repo.accept_run(run, ProductBatch::Proximity(old.proximity(run.into())));
    }
}

/// Derive the RNG seed a run actually uses from a scenario's base seed.
///
/// The contract (relied on by [`Vita::run_many`] parity):
///
/// * `derive_run_seed(base, RunId::DEFAULT) == base` — a plain
///   [`Vita::run_streaming`] (which ingests as run 0) is seeded exactly by
///   its configuration, so single-run behavior is unchanged by the run
///   dimension.
/// * For any other run id the seed is a SplitMix64-style mix of
///   `(base, run)`: two concurrent runs sharing a scenario configuration
///   still produce decorrelated data, and the derivation depends only on
///   the pair — never on scheduling order — so per-run products are
///   reproducible under arbitrary interleaving.
///
/// Applied to both the mobility seed and the RSSI seed of each scheduled
/// scenario.
pub fn derive_run_seed(base: u64, run: RunId) -> u64 {
    if run == RunId::DEFAULT {
        return base;
    }
    let mut z = base ^ (run.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The positioning batch the repository keeps for one [`PositioningData`]:
/// deterministic fixes and proximity records go in as-is; probabilistic
/// fixes keep their full candidate sets in the data while the repository
/// stores their MAP estimates. By-value so the streaming hot path moves
/// rows into storage without a copy.
fn positioning_batch(data: PositioningData) -> ProductBatch {
    match data {
        PositioningData::Deterministic(fixes) => ProductBatch::Fixes(fixes),
        PositioningData::Proximity(records) => ProductBatch::Proximity(records),
        PositioningData::Probabilistic(pfs) => ProductBatch::Fixes(map_estimates(&pfs)),
    }
}

/// Borrowing variant for the step path, which must also hand `data` back
/// to the caller.
fn positioning_batch_ref(data: &PositioningData) -> ProductBatch {
    match data {
        PositioningData::Deterministic(fixes) => ProductBatch::Fixes(fixes.clone()),
        PositioningData::Proximity(records) => ProductBatch::Proximity(records.clone()),
        PositioningData::Probabilistic(pfs) => ProductBatch::Fixes(map_estimates(pfs)),
    }
}

/// MAP estimate of each probabilistic fix as a deterministic [`Fix`].
fn map_estimates(pfs: &[ProbFix]) -> Vec<Fix> {
    pfs.iter()
        .filter_map(|pf| {
            pf.map_estimate().map(|(loc, _)| Fix {
                object: pf.object,
                loc: *loc,
                t: pf.t,
            })
        })
        .collect()
}

/// Everything [`Vita::run_streaming`] needs for steps 4–6 in one place.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    pub mobility: MobilityConfig,
    pub rssi: RssiConfig,
    pub method: MethodConfig,
    pub options: StreamOptions,
}

/// Tuning knobs of the streaming pipeline.
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// Stage workers consuming trajectory chunks (RSSI + positioning +
    /// storage appends). `0` = half the available cores; the other half
    /// goes to the mobility simulation workers.
    pub workers: usize,
    /// Bound on in-flight trajectory chunks between the mobility producer
    /// and the stage workers (backpressure).
    pub channel_capacity: usize,
    /// Storage backend the run ingests into. `Single` (the default) keeps
    /// one lock per table; `Sharded` partitions every table by object-id
    /// hash so concurrent stage workers append under per-shard locks (see
    /// the `vita-storage` crate docs for shard-count guidance).
    pub backend: StorageBackend,
}

impl StreamOptions {
    /// Builder-style backend selection, mirroring [`Vita::with_backend`].
    ///
    /// # Examples
    ///
    /// ```
    /// use vita_core::prelude::*;
    ///
    /// let options = StreamOptions::default()
    ///     .with_backend(StorageBackend::Sharded { shards: 8 });
    /// assert!(matches!(options.backend, StorageBackend::Sharded { shards: 8 }));
    /// ```
    #[must_use]
    pub fn with_backend(mut self, backend: StorageBackend) -> Self {
        self.backend = backend;
        self
    }
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            workers: 0,
            channel_capacity: vita_mobility::DEFAULT_CHUNK_CHANNEL_CAPACITY,
            backend: StorageBackend::Single,
        }
    }
}

/// What one streamed run ([`Vita::run_streaming`] or one lane of
/// [`Vita::run_many`]) did.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// The run this report describes — [`RunId::DEFAULT`] for solo
    /// [`Vita::run_streaming`], `RunId(i)` for scenario `i` of
    /// [`Vita::run_many`]. Query this run's rows through the repository's
    /// `*_run` accessors.
    pub run: RunId,
    /// Moving-object layer statistics (identical to the step path's).
    pub stats: GenerationStats,
    /// Trajectory chunks that flowed through the pipeline.
    pub chunks: usize,
    /// RSSI measurements generated and stored.
    pub rssi_rows: usize,
    /// Positioning rows stored (fixes or proximity records).
    pub positioning_rows: usize,
    /// Highest number of trajectory samples simultaneously in flight from
    /// producer handoff to storage append — the streaming counterpart of
    /// the step path's "whole run materialized" peak. Chunks still being
    /// simulated (one per mobility worker, plus one producer-side buffer
    /// slot) are not yet visible to this counter, so true peak memory is
    /// bounded by this value plus that many chunks. Under
    /// [`Vita::run_many`] this counts **this run's** chunks only, while
    /// the channel is shared: the schedule's true peak lies between the
    /// largest per-run value and the sum over runs (per-run peaks need not
    /// coincide), so size memory from the channel capacity, not from one
    /// report.
    pub peak_in_flight_samples: usize,
    /// Row counts per storage shard after the run, in shard order (one
    /// entry when the run ingested into the single-repository backend).
    /// Under [`Vita::run_many`] the repository is shared, so every report
    /// of the schedule sees the same post-schedule snapshot.
    pub shard_rows: Vec<ShardCounts>,
    /// Wall-clock time of the whole run — for [`Vita::run_many`], of the
    /// whole schedule (runs overlap; per-run wall-clock is not separable).
    pub elapsed: Duration,
}

/// Shared atomics the stage workers update.
#[derive(Default)]
struct StreamCounters {
    chunks: AtomicUsize,
    rssi_rows: AtomicUsize,
    positioning_rows: AtomicUsize,
    in_flight: AtomicUsize,
    peak_in_flight: AtomicUsize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use vita_dbi::{office, write_step, SynthParams};
    use vita_devices::DeviceType;
    use vita_indoor::Timestamp;
    use vita_mobility::LifespanConfig;
    use vita_positioning::{ProximityConfig, TrilaterationConfig};
    use vita_rssi::PathLossModel;
    use vita_storage::RunScope;

    fn toolkit() -> Vita {
        let text = write_step(&office(&SynthParams::with_floors(2)));
        Vita::from_dbi_text(&text, &BuildParams::default()).unwrap()
    }

    fn quick_mobility() -> MobilityConfig {
        MobilityConfig {
            object_count: 6,
            duration: Timestamp(60_000),
            lifespan: LifespanConfig {
                min: Timestamp(60_000),
                max: Timestamp(60_000),
            },
            seed: 77,
            ..Default::default()
        }
    }

    #[test]
    fn full_six_step_pipeline() {
        let mut vita = toolkit();
        assert_eq!(vita.env().summary().floors, 2);

        let placed = vita.deploy_devices(
            DeviceSpec::default_for(DeviceType::WiFi),
            FloorId(0),
            DeploymentModel::Coverage,
            8,
        );
        assert_eq!(placed, 8);

        let gen = vita.generate_objects(&quick_mobility()).unwrap();
        assert_eq!(gen.stats.objects, 6);
        let samples = gen.stats.samples;
        assert!(samples > 0);

        let rssi_cfg = RssiConfig {
            duration: Timestamp(60_000),
            ..Default::default()
        };
        let rssi = vita.generate_rssi(&rssi_cfg).unwrap();
        assert!(!rssi.is_empty());
        let rssi_count = rssi.len();

        let method = MethodConfig::Trilateration {
            config: TrilaterationConfig::default(),
            conversion_model: PathLossModel::default(),
        };
        let data = vita.run_positioning(&method).unwrap();
        assert!(!data.is_empty());

        // Storage holds all products.
        let c = vita.repository().counts(RunScope::All);
        assert_eq!(c.trajectories, samples);
        assert_eq!(c.rssi, rssi_count);
        assert_eq!(c.fixes, data.len());
    }

    #[test]
    fn stage_ordering_enforced() {
        let mut vita = toolkit();
        let rssi_cfg = RssiConfig::default();
        assert!(matches!(
            vita.generate_rssi(&rssi_cfg),
            Err(VitaError::MissingStage(_))
        ));
        let method = MethodConfig::Proximity(ProximityConfig::default());
        assert!(matches!(
            vita.run_positioning(&method),
            Err(VitaError::MissingStage(_))
        ));
    }

    #[test]
    fn proximity_results_stored_in_proximity_table() {
        let mut vita = toolkit();
        vita.deploy_devices(
            DeviceSpec::default_for(DeviceType::Rfid),
            FloorId(0),
            DeploymentModel::CheckPoint,
            6,
        );
        vita.generate_objects(&quick_mobility()).unwrap();
        vita.generate_rssi(&RssiConfig {
            duration: Timestamp(60_000),
            ..Default::default()
        })
        .unwrap();
        let data = vita
            .run_positioning(&MethodConfig::Proximity(ProximityConfig::default()))
            .unwrap();
        let c = vita.repository().counts(RunScope::All);
        assert_eq!(c.proximity, data.len());
        assert_eq!(c.fixes, 0);
    }

    #[test]
    fn run_streaming_fills_repository_without_materializing_stages() {
        let mut vita = toolkit();
        vita.deploy_devices(
            DeviceSpec::default_for(DeviceType::WiFi),
            FloorId(0),
            DeploymentModel::Coverage,
            8,
        );
        let scenario = ScenarioConfig {
            mobility: quick_mobility(),
            rssi: RssiConfig {
                duration: Timestamp(60_000),
                ..Default::default()
            },
            method: MethodConfig::Trilateration {
                config: TrilaterationConfig::default(),
                conversion_model: PathLossModel::default(),
            },
            options: StreamOptions::default(),
        };
        let report = vita.run_streaming(&scenario).unwrap();
        let c = vita.repository().counts(RunScope::All);
        assert_eq!(report.stats.objects, 6);
        assert_eq!(report.chunks, 6);
        assert_eq!(c.trajectories, report.stats.samples);
        assert_eq!(c.rssi, report.rssi_rows);
        assert_eq!(c.fixes, report.positioning_rows);
        assert_eq!(c.proximity, 0);
        assert!(c.rssi > 0 && c.fixes > 0);
        // Streaming bounds in-flight data; it never holds the whole run.
        assert!(report.peak_in_flight_samples <= report.stats.samples);
        assert!(report.peak_in_flight_samples > 0);
        // Step-path products are not materialized by the streaming path.
        assert!(vita.generation().is_none());
        assert!(vita.rssi().is_none());
    }

    #[test]
    fn run_streaming_requires_compatible_devices() {
        let mut vita = toolkit();
        vita.deploy_devices(
            DeviceSpec::default_for(DeviceType::Rfid),
            FloorId(0),
            DeploymentModel::CheckPoint,
            4,
        );
        let scenario = ScenarioConfig {
            mobility: quick_mobility(),
            rssi: RssiConfig::default(),
            method: MethodConfig::Trilateration {
                config: TrilaterationConfig::default(),
                conversion_model: PathLossModel::default(),
            },
            options: StreamOptions::default(),
        };
        assert!(matches!(
            vita.run_streaming(&scenario),
            Err(VitaError::Positioning(_))
        ));
        // Nothing was stored.
        assert_eq!(vita.repository().counts(RunScope::All).total(), 0);
    }

    fn trilateration_scenario(mobility: MobilityConfig) -> ScenarioConfig {
        ScenarioConfig {
            mobility,
            rssi: RssiConfig {
                duration: Timestamp(60_000),
                ..Default::default()
            },
            method: MethodConfig::Trilateration {
                config: TrilaterationConfig::default(),
                conversion_model: PathLossModel::default(),
            },
            options: StreamOptions::default(),
        }
    }

    #[test]
    fn run_many_tags_runs_and_isolates_rows() {
        let mut vita = toolkit();
        vita.deploy_devices(
            DeviceSpec::default_for(DeviceType::WiFi),
            FloorId(0),
            DeploymentModel::Coverage,
            8,
        );
        let a = trilateration_scenario(quick_mobility());
        let mut b = a.clone();
        b.mobility.object_count = 4;
        b.mobility.seed = 1234;
        let reports = vita.run_many(&[a, b]).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].run, RunId(0));
        assert_eq!(reports[1].run, RunId(1));
        assert_eq!(reports[0].stats.objects, 6);
        assert_eq!(reports[1].stats.objects, 4);

        let repo = vita.repository();
        assert_eq!(repo.run_ids(), vec![RunId(0), RunId(1)]);
        for r in &reports {
            assert_eq!(repo.trajectories(r.run.into()).len(), r.stats.samples);
            assert_eq!(repo.rssi(r.run.into()).len(), r.rssi_rows);
            assert_eq!(repo.fixes(r.run.into()).len(), r.positioning_rows);
        }
        // The all-runs scope merges every run.
        assert_eq!(
            repo.counts(RunScope::All).trajectories,
            reports.iter().map(|r| r.stats.samples).sum::<usize>()
        );
    }

    #[test]
    fn run_many_derives_distinct_seeds_for_identical_scenarios() {
        let mut vita = toolkit();
        vita.deploy_devices(
            DeviceSpec::default_for(DeviceType::WiFi),
            FloorId(0),
            DeploymentModel::Coverage,
            8,
        );
        let s = trilateration_scenario(quick_mobility());
        let reports = vita.run_many(&[s.clone(), s]).unwrap();
        let repo = vita.repository();
        let a = repo.trajectories(RunId(0).into());
        let b = repo.trajectories(RunId(1).into());
        // Same scenario, different run → decorrelated RNG streams: the
        // trajectories must not be identical.
        assert_eq!(reports[0].stats.objects, reports[1].stats.objects);
        let identical = a.len() == b.len()
            && a.iter()
                .zip(&b)
                .all(|(x, y)| x.t == y.t && x.point().approx_eq(y.point()));
        assert!(!identical, "run 1 replayed run 0's data");
    }

    #[test]
    fn run_many_allocates_run_ids_past_existing_runs() {
        let mut vita = toolkit();
        vita.deploy_devices(
            DeviceSpec::default_for(DeviceType::WiFi),
            FloorId(0),
            DeploymentModel::Coverage,
            8,
        );
        let s = trilateration_scenario(quick_mobility());
        // run_streaming ingests as run 0 …
        let solo = vita.run_streaming(&s).unwrap();
        assert_eq!(solo.run, RunId(0));
        // … so a following schedule must not alias it.
        let reports = vita.run_many(&[s.clone(), s]).unwrap();
        assert_eq!(reports[0].run, RunId(1));
        assert_eq!(reports[1].run, RunId(2));
        let repo = vita.repository();
        assert_eq!(repo.run_ids(), vec![RunId(0), RunId(1), RunId(2)]);
        assert_eq!(repo.trajectories(RunId(0).into()).len(), solo.stats.samples);
        for r in &reports {
            assert_eq!(repo.trajectories(r.run.into()).len(), r.stats.samples);
        }
    }

    #[test]
    fn rejected_scenario_leaves_backend_untouched() {
        let mut vita = toolkit();
        vita.deploy_devices(
            DeviceSpec::default_for(DeviceType::WiFi),
            FloorId(0),
            DeploymentModel::Coverage,
            8,
        );
        vita.run_streaming(&trilateration_scenario(quick_mobility()))
            .unwrap();
        let before = vita.repository().backend();
        // Invalid mobility + a backend change request: the error must not
        // re-partition the repository.
        let mut bad = trilateration_scenario(quick_mobility());
        bad.mobility.max_speed = 0.0;
        bad.options.backend = StorageBackend::Sharded { shards: 4 };
        assert!(matches!(
            vita.run_streaming_as(RunId(9), &bad),
            Err(VitaError::Mobility(_))
        ));
        assert_eq!(vita.repository().backend(), before);
        assert!(matches!(
            vita.run_many(std::slice::from_ref(&bad)),
            Err(VitaError::Mobility(_))
        ));
        assert_eq!(vita.repository().backend(), before);
        assert_eq!(vita.repository().run_ids(), vec![RunId(0)]);
    }

    #[test]
    fn run_many_rejects_mixed_backends() {
        let mut vita = toolkit();
        vita.deploy_devices(
            DeviceSpec::default_for(DeviceType::WiFi),
            FloorId(0),
            DeploymentModel::Coverage,
            8,
        );
        let a = trilateration_scenario(quick_mobility());
        let mut b = a.clone();
        b.options.backend = StorageBackend::Sharded { shards: 4 };
        assert!(matches!(
            vita.run_many(&[a, b]),
            Err(VitaError::MixedBackends)
        ));
        assert_eq!(vita.repository().counts(RunScope::All).total(), 0);
    }

    #[test]
    fn run_many_of_nothing_is_empty() {
        let mut vita = toolkit();
        assert!(vita.run_many(&[]).unwrap().is_empty());
        assert_eq!(vita.repository().counts(RunScope::All).total(), 0);
    }

    #[test]
    fn derive_run_seed_contract_holds() {
        assert_eq!(derive_run_seed(42, RunId::DEFAULT), 42);
        assert_ne!(derive_run_seed(42, RunId(1)), 42);
        assert_ne!(derive_run_seed(42, RunId(1)), derive_run_seed(42, RunId(2)));
        // Depends only on (base, run): reproducible across calls.
        assert_eq!(derive_run_seed(7, RunId(3)), derive_run_seed(7, RunId(3)));
    }

    #[test]
    fn save_load_round_trips_runs_across_backends() {
        let mut vita = toolkit();
        vita.deploy_devices(
            DeviceSpec::default_for(DeviceType::WiFi),
            FloorId(0),
            DeploymentModel::Coverage,
            8,
        );
        let a = trilateration_scenario(quick_mobility());
        let mut b = a.clone();
        b.mobility.object_count = 3;
        let reports = vita.run_many(&[a, b]).unwrap();
        let dir = std::env::temp_dir().join(format!(
            "vita_save_load_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        vita.save_to(&dir).unwrap();

        // Load into a fresh toolkit on the *sharded* backend: run tags
        // must survive the backend switch.
        let mut restored = toolkit().with_backend(StorageBackend::Sharded { shards: 4 });
        restored.load_from(&dir).unwrap();
        assert!(matches!(
            restored.repository().backend(),
            StorageBackend::Sharded { shards: 4 }
        ));
        assert_eq!(restored.repository().run_ids(), vita.repository().run_ids());
        for r in &reports {
            assert_eq!(
                restored.repository().counts(r.run.into()),
                vita.repository().counts(r.run.into())
            );
            let mut want = vita.repository().trajectories(r.run.into());
            let mut got = restored.repository().trajectories(r.run.into());
            let key = |s: &vita_mobility::TrajectorySample| (s.object.0, s.t.0);
            want.sort_by_key(key);
            got.sort_by_key(key);
            assert_eq!(got, want);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_from_missing_dir_is_io_error() {
        let mut vita = toolkit();
        let missing = std::env::temp_dir().join("vita_definitely_missing_dir");
        assert!(matches!(vita.load_from(&missing), Err(VitaError::Io(_))));
    }

    #[test]
    fn load_from_corrupt_file_is_codec_error_and_preserves_repo() {
        let mut vita = toolkit();
        vita.deploy_devices(
            DeviceSpec::default_for(DeviceType::WiFi),
            FloorId(0),
            DeploymentModel::Coverage,
            8,
        );
        vita.run_streaming(&trilateration_scenario(quick_mobility()))
            .unwrap();
        let counts = vita.repository().counts(RunScope::All);
        let dir = std::env::temp_dir().join(format!(
            "vita_corrupt_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        for name in vita_storage::RepositoryExport::FILE_NAMES {
            std::fs::write(dir.join(name), b"not a vita file").unwrap();
        }
        assert!(matches!(vita.load_from(&dir), Err(VitaError::Codec(_))));
        assert_eq!(vita.repository().counts(RunScope::All), counts);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_dbi_is_reported() {
        assert!(matches!(
            Vita::from_dbi_text("garbage", &BuildParams::default()),
            Err(VitaError::Dbi(_))
        ));
    }

    #[test]
    fn obstacle_deployment_through_env_mut() {
        let mut vita = toolkit();
        let n_before = vita.env().obstacles().len();
        vita.env_mut().deploy_obstacle(
            FloorId(0),
            vita_geometry::Polygon::rect(10.0, 11.0, 12.0, 13.0),
            5.0,
        );
        assert_eq!(vita.env().obstacles().len(), n_before + 1);
    }
}
