//! The Vita toolkit facade: the three-layer Producer of paper Fig. 2 wired
//! to the Interface (DBI Processor + Configuration Loader) and Storage.
//!
//! The six-step demo flow (paper §5) maps onto this API:
//!
//! 1. Import a DBI file                       → [`Vita::from_dbi_text`]
//! 2. View/modify the host environment        → [`Vita::env`] / [`Vita::env_mut`]
//! 3. Configure and generate devices          → [`Vita::deploy_devices`]
//! 4. Configure and generate moving objects   → [`Vita::generate_objects`]
//! 5. Configure and generate raw RSSI         → [`Vita::generate_rssi`]
//! 6. Choose a positioning method, generate   → [`Vita::run_positioning`]
//!
//! All products are kept in the embedded storage repository
//! ([`vita_storage::AnyRepository`] — single or sharded backend, see
//! [`StreamOptions::backend`]) and returned to the caller.
//!
//! ## Streaming batched dataflow
//!
//! Steps 4–6 can also run as one concurrent pipeline via
//! [`Vita::run_streaming`]: mobility workers emit per-object trajectory
//! chunks over a bounded channel while stage workers generate that chunk's
//! RSSI, position it, and append every product to storage as owned batches
//! ([`vita_storage::ProductSink`]). No layer materializes the whole run —
//! peak memory is bounded by the channel capacity — and for a fixed seed
//! the repository contents and fix sets are identical to the step-by-step
//! path (the step methods are thin wrappers over the same sinks).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use vita_dbi::LoadedDbi;
use vita_devices::{deploy, DeploymentModel, DeviceRegistry, DeviceSpec};
use vita_indoor::{build_environment, BuildParams, FloorId, IndoorEnvironment};
use vita_mobility::{GenerationResult, GenerationStats, MobilityConfig, TrajectoryChunk};
use vita_positioning::{
    run_positioning, ChunkPositioner, Fix, MethodConfig, PmcError, PositioningData, ProbFix,
};
use vita_rssi::{generate_rssi, RssiConfig, RssiGenerator, RssiStore};
use vita_storage::{AnyRepository, ProductBatch, ProductSink, ShardCounts, StorageBackend};

/// Errors from assembling or running the pipeline.
#[derive(Debug)]
pub enum VitaError {
    Dbi(vita_dbi::LoadError),
    Build(vita_indoor::BuildError),
    Mobility(vita_mobility::ConfigError),
    Positioning(PmcError),
    /// Step ordering violated (e.g. positioning before RSSI generation).
    MissingStage(&'static str),
}

impl std::fmt::Display for VitaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VitaError::Dbi(e) => write!(f, "DBI processing: {e}"),
            VitaError::Build(e) => write!(f, "environment construction: {e}"),
            VitaError::Mobility(e) => write!(f, "moving object layer: {e}"),
            VitaError::Positioning(e) => write!(f, "positioning layer: {e}"),
            VitaError::MissingStage(s) => write!(f, "pipeline stage missing: {s}"),
        }
    }
}

impl std::error::Error for VitaError {}

/// The toolkit: host environment + device registry + storage + the products
/// of each layer as they are generated.
pub struct Vita {
    env: IndoorEnvironment,
    devices: DeviceRegistry,
    repo: AnyRepository,
    /// Warnings from DBI processing and environment construction.
    pub warnings: Vec<String>,
    last_generation: Option<GenerationResult>,
    last_rssi: Option<RssiStore>,
}

impl Vita {
    /// Step 1: import a DBI (STEP/IFC-subset) file.
    pub fn from_dbi_text(text: &str, params: &BuildParams) -> Result<Self, VitaError> {
        let loaded: LoadedDbi = vita_dbi::load_dbi(text).map_err(VitaError::Dbi)?;
        let mut warnings: Vec<String> = loaded
            .decode_issues
            .iter()
            .map(|i| format!("decode: {i}"))
            .chain(
                loaded
                    .repair
                    .findings
                    .iter()
                    .map(|f| format!("repair: {} {}", f.entity, f.kind)),
            )
            .collect();
        let built = build_environment(&loaded.model, params).map_err(VitaError::Build)?;
        warnings.extend(built.warnings.iter().map(|w| format!("build: {w}")));
        Ok(Vita {
            env: built.env,
            devices: DeviceRegistry::new(),
            repo: AnyRepository::default(),
            warnings,
            last_generation: None,
            last_rssi: None,
        })
    }

    /// Build directly from an already-decoded model (skips parsing).
    pub fn from_model(model: &vita_dbi::DbiModel, params: &BuildParams) -> Result<Self, VitaError> {
        let built = build_environment(model, params).map_err(VitaError::Build)?;
        Ok(Vita {
            env: built.env,
            devices: DeviceRegistry::new(),
            repo: AnyRepository::default(),
            warnings: built
                .warnings
                .iter()
                .map(|w| format!("build: {w}"))
                .collect(),
            last_generation: None,
            last_rssi: None,
        })
    }

    /// Step 2: inspect / customize the host environment.
    pub fn env(&self) -> &IndoorEnvironment {
        &self.env
    }

    pub fn env_mut(&mut self) -> &mut IndoorEnvironment {
        &mut self.env
    }

    /// Step 3: deploy positioning devices on a floor with a deployment
    /// model. Returns the number of devices placed.
    pub fn deploy_devices(
        &mut self,
        spec: DeviceSpec,
        floor: FloorId,
        model: DeploymentModel,
        count: usize,
    ) -> usize {
        deploy(&self.env, &mut self.devices, spec, floor, model, count).len()
    }

    /// Manual placement variant of step 3.
    pub fn place_device(
        &mut self,
        spec: DeviceSpec,
        floor: FloorId,
        position: vita_geometry::Point,
    ) -> vita_indoor::DeviceId {
        self.devices.place(spec, floor, position)
    }

    pub fn devices(&self) -> &DeviceRegistry {
        &self.devices
    }

    /// Step 4: generate moving objects and their raw trajectories.
    pub fn generate_objects(
        &mut self,
        cfg: &MobilityConfig,
    ) -> Result<&GenerationResult, VitaError> {
        let result = vita_mobility::generate(&self.env, cfg).map_err(VitaError::Mobility)?;
        self.repo.accept(ProductBatch::Trajectories(
            result.trajectories.all_samples_time_ordered(),
        ));
        self.last_generation = Some(result);
        Ok(self.last_generation.as_ref().unwrap())
    }

    /// Step 5: generate raw RSSI measurements from devices × trajectories.
    pub fn generate_rssi(&mut self, cfg: &RssiConfig) -> Result<&RssiStore, VitaError> {
        let gen = self
            .last_generation
            .as_ref()
            .ok_or(VitaError::MissingStage(
                "generate_objects must run before generate_rssi",
            ))?;
        let store = generate_rssi(&self.env, &self.devices, &gen.trajectories, cfg);
        self.repo.accept(ProductBatch::Rssi(store.all().to_vec()));
        self.last_rssi = Some(store);
        Ok(self.last_rssi.as_ref().unwrap())
    }

    /// Step 6: run the chosen positioning method over the raw RSSI data.
    pub fn run_positioning(&mut self, method: &MethodConfig) -> Result<PositioningData, VitaError> {
        let rssi = self.last_rssi.as_ref().ok_or(VitaError::MissingStage(
            "generate_rssi must run before run_positioning",
        ))?;
        let data = run_positioning(&self.env, &self.devices, rssi, method)
            .map_err(VitaError::Positioning)?;
        self.repo.accept(positioning_batch_ref(&data));
        Ok(data)
    }

    /// Steps 4–6 as one streaming batched dataflow: mobility simulation
    /// workers produce per-object trajectory chunks into a bounded channel
    /// while stage workers concurrently generate each chunk's RSSI, run the
    /// positioning method on it, and append all three products to the
    /// repository as owned batches.
    ///
    /// For a fixed seed the resulting repository contents (counts and fix
    /// sets) are identical to running [`Vita::generate_objects`] →
    /// [`Vita::generate_rssi`] → [`Vita::run_positioning`], but no stage
    /// ever materializes a whole run: peak in-flight data is bounded by
    /// `options.channel_capacity` chunks (see
    /// [`PipelineReport::peak_in_flight_samples`]).
    ///
    /// Devices must already be deployed (step 3). The step-path products
    /// ([`Vita::generation`], [`Vita::rssi`]) are *not* materialized by
    /// this entry point — query the repository instead.
    ///
    /// `scenario.options.backend` picks the storage backend the run
    /// ingests into: with [`StorageBackend::Sharded`], batches route by
    /// object-id hash to per-shard locks, so concurrent stage workers stop
    /// contending on one lock per table (the repository is switched via
    /// [`Vita::set_storage_backend`] before any worker starts).
    pub fn run_streaming(
        &mut self,
        scenario: &ScenarioConfig,
    ) -> Result<PipelineReport, VitaError> {
        let start = Instant::now();
        self.set_storage_backend(scenario.options.backend);
        let positioner = ChunkPositioner::new(&self.env, &self.devices, &scenario.method)
            .map_err(VitaError::Positioning)?;
        let rssi_gen = RssiGenerator::new(&self.env, &self.devices, &scenario.rssi);
        let opts = &scenario.options;
        // Split the core budget between the two pools: stage workers here,
        // simulation workers inside the mobility producer. Sizing both to
        // the full core count would oversubscribe the machine 2×.
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let workers = if opts.workers == 0 {
            (cores / 2).max(1)
        } else {
            opts.workers
        };
        let sim_workers = cores.saturating_sub(workers).max(1);
        let capacity = opts.channel_capacity.max(1);

        let repo = &self.repo;
        let counters = StreamCounters::default();
        let streamed = std::thread::scope(|scope| {
            let (tx, rx) = mpsc::sync_channel::<TrajectoryChunk>(capacity);
            let rx = Arc::new(Mutex::new(rx));
            for _ in 0..workers {
                let rx = Arc::clone(&rx);
                let positioner = &positioner;
                let rssi_gen = &rssi_gen;
                let counters = &counters;
                scope.spawn(move || loop {
                    // Hold the lock only for the receive; processing runs
                    // unlocked so workers overlap.
                    let msg = rx.lock().expect("receiver lock").recv();
                    let Ok(chunk) = msg else {
                        return; // producer done, queue drained
                    };
                    let measurements = rssi_gen.measure_trajectory(chunk.object, &chunk.trajectory);
                    let store = RssiStore::new(measurements);
                    let data = positioner.position(&store);

                    let samples = chunk.trajectory.into_samples();
                    let n_samples = samples.len();
                    counters.rssi_rows.fetch_add(store.len(), Ordering::Relaxed);
                    let positioning = positioning_batch(data);
                    counters
                        .positioning_rows
                        .fetch_add(positioning.len(), Ordering::Relaxed);
                    repo.accept(ProductBatch::Trajectories(samples));
                    repo.accept(ProductBatch::Rssi(store.into_measurements()));
                    repo.accept(positioning);
                    counters.in_flight.fetch_sub(n_samples, Ordering::Relaxed);
                });
            }

            // Produce on this thread; `send` applies backpressure when all
            // workers are busy and the channel is full. The producer's own
            // channel gets capacity 1: buffering there would be redundant
            // with this pipeline's channel and would hold chunks the
            // in-flight counter cannot see yet.
            let producer = vita_mobility::ChunkStreaming {
                channel_capacity: 1,
                max_workers: sim_workers,
            };
            let result = vita_mobility::generate_streaming(
                &self.env,
                &scenario.mobility,
                &producer,
                |chunk| {
                    let n = chunk.trajectory.len();
                    counters.chunks.fetch_add(1, Ordering::Relaxed);
                    let now = counters.in_flight.fetch_add(n, Ordering::Relaxed) + n;
                    counters.peak_in_flight.fetch_max(now, Ordering::Relaxed);
                    tx.send(chunk).expect("stage workers alive");
                },
            );
            drop(tx);
            result
        })
        .map_err(VitaError::Mobility)?;

        Ok(PipelineReport {
            stats: streamed.stats,
            chunks: counters.chunks.into_inner(),
            rssi_rows: counters.rssi_rows.into_inner(),
            positioning_rows: counters.positioning_rows.into_inner(),
            peak_in_flight_samples: counters.peak_in_flight.into_inner(),
            shard_rows: self.repo.per_shard_counts(),
            elapsed: start.elapsed(),
        })
    }

    /// Switch the storage backend. A no-op when the repository already has
    /// the requested shape; otherwise the new backend is installed and any
    /// rows already stored are re-partitioned into it. Row *sets* are
    /// unchanged — every query returns the same rows — but re-ingestion
    /// replays rows in scan order, so answers that expose arrival order
    /// among equal sort keys (scan, ties in `time_window`/kNN) may come
    /// back permuted relative to before the switch.
    pub fn set_storage_backend(&mut self, backend: StorageBackend) {
        if self.repo.backend() == backend {
            return;
        }
        let old = std::mem::replace(&mut self.repo, AnyRepository::new(backend));
        if old.counts() != (0, 0, 0, 0) {
            self.repo
                .accept(ProductBatch::Trajectories(old.trajectory_rows()));
            self.repo.accept(ProductBatch::Rssi(old.rssi_rows()));
            self.repo.accept(ProductBatch::Fixes(old.fix_rows()));
            self.repo
                .accept(ProductBatch::Proximity(old.proximity_rows()));
        }
    }

    /// The products of the last generation (step 4), if any.
    pub fn generation(&self) -> Option<&GenerationResult> {
        self.last_generation.as_ref()
    }

    /// The raw RSSI data of the last step-5 run, if any.
    pub fn rssi(&self) -> Option<&RssiStore> {
        self.last_rssi.as_ref()
    }

    /// The storage repository with everything generated so far (either
    /// backend; see [`vita_storage::AnyRepository`] for the query surface).
    pub fn repository(&self) -> &AnyRepository {
        &self.repo
    }
}

/// The positioning batch the repository keeps for one [`PositioningData`]:
/// deterministic fixes and proximity records go in as-is; probabilistic
/// fixes keep their full candidate sets in the data while the repository
/// stores their MAP estimates. By-value so the streaming hot path moves
/// rows into storage without a copy.
fn positioning_batch(data: PositioningData) -> ProductBatch {
    match data {
        PositioningData::Deterministic(fixes) => ProductBatch::Fixes(fixes),
        PositioningData::Proximity(records) => ProductBatch::Proximity(records),
        PositioningData::Probabilistic(pfs) => ProductBatch::Fixes(map_estimates(&pfs)),
    }
}

/// Borrowing variant for the step path, which must also hand `data` back
/// to the caller.
fn positioning_batch_ref(data: &PositioningData) -> ProductBatch {
    match data {
        PositioningData::Deterministic(fixes) => ProductBatch::Fixes(fixes.clone()),
        PositioningData::Proximity(records) => ProductBatch::Proximity(records.clone()),
        PositioningData::Probabilistic(pfs) => ProductBatch::Fixes(map_estimates(pfs)),
    }
}

/// MAP estimate of each probabilistic fix as a deterministic [`Fix`].
fn map_estimates(pfs: &[ProbFix]) -> Vec<Fix> {
    pfs.iter()
        .filter_map(|pf| {
            pf.map_estimate().map(|(loc, _)| Fix {
                object: pf.object,
                loc: *loc,
                t: pf.t,
            })
        })
        .collect()
}

/// Everything [`Vita::run_streaming`] needs for steps 4–6 in one place.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    pub mobility: MobilityConfig,
    pub rssi: RssiConfig,
    pub method: MethodConfig,
    pub options: StreamOptions,
}

/// Tuning knobs of the streaming pipeline.
#[derive(Debug, Clone, Copy)]
pub struct StreamOptions {
    /// Stage workers consuming trajectory chunks (RSSI + positioning +
    /// storage appends). `0` = half the available cores; the other half
    /// goes to the mobility simulation workers.
    pub workers: usize,
    /// Bound on in-flight trajectory chunks between the mobility producer
    /// and the stage workers (backpressure).
    pub channel_capacity: usize,
    /// Storage backend the run ingests into. `Single` (the default) keeps
    /// one lock per table; `Sharded` partitions every table by object-id
    /// hash so concurrent stage workers append under per-shard locks (see
    /// the `vita-storage` crate docs for shard-count guidance).
    pub backend: StorageBackend,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            workers: 0,
            channel_capacity: vita_mobility::DEFAULT_CHUNK_CHANNEL_CAPACITY,
            backend: StorageBackend::Single,
        }
    }
}

/// What one [`Vita::run_streaming`] run did.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Moving-object layer statistics (identical to the step path's).
    pub stats: GenerationStats,
    /// Trajectory chunks that flowed through the pipeline.
    pub chunks: usize,
    /// RSSI measurements generated and stored.
    pub rssi_rows: usize,
    /// Positioning rows stored (fixes or proximity records).
    pub positioning_rows: usize,
    /// Highest number of trajectory samples simultaneously in flight from
    /// producer handoff to storage append — the streaming counterpart of
    /// the step path's "whole run materialized" peak. Chunks still being
    /// simulated (one per mobility worker, plus one producer-side buffer
    /// slot) are not yet visible to this counter, so true peak memory is
    /// bounded by this value plus that many chunks.
    pub peak_in_flight_samples: usize,
    /// Row counts per storage shard after the run, in shard order (one
    /// entry when the run ingested into the single-repository backend).
    pub shard_rows: Vec<ShardCounts>,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

/// Shared atomics the stage workers update.
#[derive(Default)]
struct StreamCounters {
    chunks: AtomicUsize,
    rssi_rows: AtomicUsize,
    positioning_rows: AtomicUsize,
    in_flight: AtomicUsize,
    peak_in_flight: AtomicUsize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use vita_dbi::{office, write_step, SynthParams};
    use vita_devices::DeviceType;
    use vita_indoor::Timestamp;
    use vita_mobility::LifespanConfig;
    use vita_positioning::{ProximityConfig, TrilaterationConfig};
    use vita_rssi::PathLossModel;

    fn toolkit() -> Vita {
        let text = write_step(&office(&SynthParams::with_floors(2)));
        Vita::from_dbi_text(&text, &BuildParams::default()).unwrap()
    }

    fn quick_mobility() -> MobilityConfig {
        MobilityConfig {
            object_count: 6,
            duration: Timestamp(60_000),
            lifespan: LifespanConfig {
                min: Timestamp(60_000),
                max: Timestamp(60_000),
            },
            seed: 77,
            ..Default::default()
        }
    }

    #[test]
    fn full_six_step_pipeline() {
        let mut vita = toolkit();
        assert_eq!(vita.env().summary().floors, 2);

        let placed = vita.deploy_devices(
            DeviceSpec::default_for(DeviceType::WiFi),
            FloorId(0),
            DeploymentModel::Coverage,
            8,
        );
        assert_eq!(placed, 8);

        let gen = vita.generate_objects(&quick_mobility()).unwrap();
        assert_eq!(gen.stats.objects, 6);
        let samples = gen.stats.samples;
        assert!(samples > 0);

        let rssi_cfg = RssiConfig {
            duration: Timestamp(60_000),
            ..Default::default()
        };
        let rssi = vita.generate_rssi(&rssi_cfg).unwrap();
        assert!(!rssi.is_empty());
        let rssi_count = rssi.len();

        let method = MethodConfig::Trilateration {
            config: TrilaterationConfig::default(),
            conversion_model: PathLossModel::default(),
        };
        let data = vita.run_positioning(&method).unwrap();
        assert!(!data.is_empty());

        // Storage holds all products.
        let (t, r, f, _) = vita.repository().counts();
        assert_eq!(t, samples);
        assert_eq!(r, rssi_count);
        assert_eq!(f, data.len());
    }

    #[test]
    fn stage_ordering_enforced() {
        let mut vita = toolkit();
        let rssi_cfg = RssiConfig::default();
        assert!(matches!(
            vita.generate_rssi(&rssi_cfg),
            Err(VitaError::MissingStage(_))
        ));
        let method = MethodConfig::Proximity(ProximityConfig::default());
        assert!(matches!(
            vita.run_positioning(&method),
            Err(VitaError::MissingStage(_))
        ));
    }

    #[test]
    fn proximity_results_stored_in_proximity_table() {
        let mut vita = toolkit();
        vita.deploy_devices(
            DeviceSpec::default_for(DeviceType::Rfid),
            FloorId(0),
            DeploymentModel::CheckPoint,
            6,
        );
        vita.generate_objects(&quick_mobility()).unwrap();
        vita.generate_rssi(&RssiConfig {
            duration: Timestamp(60_000),
            ..Default::default()
        })
        .unwrap();
        let data = vita
            .run_positioning(&MethodConfig::Proximity(ProximityConfig::default()))
            .unwrap();
        let (_, _, fixes, prox) = vita.repository().counts();
        assert_eq!(prox, data.len());
        assert_eq!(fixes, 0);
    }

    #[test]
    fn run_streaming_fills_repository_without_materializing_stages() {
        let mut vita = toolkit();
        vita.deploy_devices(
            DeviceSpec::default_for(DeviceType::WiFi),
            FloorId(0),
            DeploymentModel::Coverage,
            8,
        );
        let scenario = ScenarioConfig {
            mobility: quick_mobility(),
            rssi: RssiConfig {
                duration: Timestamp(60_000),
                ..Default::default()
            },
            method: MethodConfig::Trilateration {
                config: TrilaterationConfig::default(),
                conversion_model: PathLossModel::default(),
            },
            options: StreamOptions::default(),
        };
        let report = vita.run_streaming(&scenario).unwrap();
        let (t, r, f, p) = vita.repository().counts();
        assert_eq!(report.stats.objects, 6);
        assert_eq!(report.chunks, 6);
        assert_eq!(t, report.stats.samples);
        assert_eq!(r, report.rssi_rows);
        assert_eq!(f, report.positioning_rows);
        assert_eq!(p, 0);
        assert!(r > 0 && f > 0);
        // Streaming bounds in-flight data; it never holds the whole run.
        assert!(report.peak_in_flight_samples <= report.stats.samples);
        assert!(report.peak_in_flight_samples > 0);
        // Step-path products are not materialized by the streaming path.
        assert!(vita.generation().is_none());
        assert!(vita.rssi().is_none());
    }

    #[test]
    fn run_streaming_requires_compatible_devices() {
        let mut vita = toolkit();
        vita.deploy_devices(
            DeviceSpec::default_for(DeviceType::Rfid),
            FloorId(0),
            DeploymentModel::CheckPoint,
            4,
        );
        let scenario = ScenarioConfig {
            mobility: quick_mobility(),
            rssi: RssiConfig::default(),
            method: MethodConfig::Trilateration {
                config: TrilaterationConfig::default(),
                conversion_model: PathLossModel::default(),
            },
            options: StreamOptions::default(),
        };
        assert!(matches!(
            vita.run_streaming(&scenario),
            Err(VitaError::Positioning(_))
        ));
        // Nothing was stored.
        assert_eq!(vita.repository().counts(), (0, 0, 0, 0));
    }

    #[test]
    fn bad_dbi_is_reported() {
        assert!(matches!(
            Vita::from_dbi_text("garbage", &BuildParams::default()),
            Err(VitaError::Dbi(_))
        ));
    }

    #[test]
    fn obstacle_deployment_through_env_mut() {
        let mut vita = toolkit();
        let n_before = vita.env().obstacles().len();
        vita.env_mut().deploy_obstacle(
            FloorId(0),
            vita_geometry::Polygon::rect(10.0, 11.0, 12.0, 13.0),
            5.0,
        );
        assert_eq!(vita.env().obstacles().len(), n_before + 1);
    }
}
