//! The audit applied to the workspace that ships it: `cargo test` fails
//! the moment anyone introduces a violation, even before CI runs the
//! dedicated audit job.

use std::path::PathBuf;

use vita_audit::{check_workspace, diag, AuditConfig};

#[test]
fn workspace_passes_its_own_audit() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg = AuditConfig::load(&root.join("audit.toml")).expect("workspace audit.toml parses");
    let (diags, summary) = check_workspace(&root, &cfg).expect("workspace scan runs");
    assert!(
        diags.is_empty(),
        "workspace audit found {} violation(s):\n{}",
        diags.len(),
        diag::render(&diags)
    );
    assert!(
        summary.crates >= 13,
        "expected every workspace crate to be scanned, saw {}",
        summary.crates
    );
}
