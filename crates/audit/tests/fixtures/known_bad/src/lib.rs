// The known-bad golden fixture: every rule the audit implements fires at
// least once in this file, at positions pinned by ../../expected.txt.
// It is lexed by the audit, never compiled by cargo. The lexer-hardening
// half lives in the strings and comments below: rule-triggering text
// inside them must NOT appear in the golden output.

use std::fs; // line 7: R2

pub fn wall_clock_seed() -> u64 {
    let t = Instant::now(); // line 10: R1
    let s = SystemTime::now(); // line 11: R1
    let mut rng = thread_rng(); // line 12: R1
    fs::write("/tmp/x", b"y").unwrap(); // line 13: R2 + R4
    t.elapsed().as_nanos() as u64
}

pub fn pacing() {
    thread::sleep(Duration::from_millis(1)); // line 18: R3
    std::hint::spin_loop(); // line 19: R3
    let v: Option<u32> = None;
    v.expect("boom"); // line 21: R4
}

pub fn printing() {
    println!("library code must not print"); // line 25: R6
    eprintln!("nor this"); // line 26: R6
}

pub fn raw_power() {
    unsafe { core::hint::unreachable_unchecked() } // line 30: R5 (no SAFETY)
}

// SAFETY: the pointer is valid for the lifetime of the arena.
pub fn raw_power_justified(p: *const u8) -> u8 {
    unsafe { *p } // fine: SAFETY comment above
}

pub fn justified() {
    let v: Option<u32> = Some(1);
    v.unwrap(); // audit: allow(R4) fixture: a justified allow suppresses the diagnostic
}

pub fn justified_standalone(v: Option<u32>) -> u32 {
    // audit: allow(R4) fixture: standalone allow covering the next line
    v.unwrap()
}

pub fn annotation_errors() {
    // audit: allow(R9) unknown rule ids are themselves errors  <- line 49: A1
    // audit: allow(R4)
    let x: Option<u32> = Some(2); // (the bare allow above is line 50: A3)
    x.unwrap(); // line 52: R4 (nothing suppresses it)
}

// audit: allow(R3) fixture: nothing sleeps on the next line  <- line 55: A2

/// Lexer hardening: none of the text below may reach the golden output.
pub fn decoys() -> String {
    let a = "Instant::now() and thread_rng() in a string";
    let b = r#"std::fs::write and .unwrap() in a raw string"#;
    let c = r##"thread::sleep(d) behind "# hashes"##;
    let d = '"'; // a char literal that must not open a string
    let e = '\''; // escaped quote char
    let _lifetime: &'static str = "println! in a string";
    /* block comment: SystemTime::now()
       /* nested: x.expect("nested comment") */
       still inside the outer comment: eprintln!("x") */
    // line comment: fs::remove_file("/")
    format!("{a}{b}{c}{d}{e}")
}

#[cfg(test)]
mod tests {
    // Test code: R1-R4/R6 are out of scope here.
    fn all_the_sins() {
        let t = Instant::now();
        thread::sleep(Duration::from_millis(1));
        std::fs::write("/tmp/t", b"x").unwrap().expect("twice");
        println!("tests may print");
    }
}
