// A crate with zero unsafe code whose root forgets
// `#![forbid(unsafe_code)]` — the crate-level half of R5.

pub fn safe() -> u32 {
    41 + 1
}
