//! Golden diagnostics test: the known-bad fixture crates under
//! `tests/fixtures/` must produce byte-for-byte the diagnostics in
//! `tests/fixtures/expected.txt`. Regenerate with
//! `VITA_BLESS=1 cargo test -p vita-audit --test golden`.

use std::path::PathBuf;

use vita_audit::{check_workspace, diag, AuditConfig};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn known_bad_fixture_matches_golden() {
    let root = fixture_root();
    let cfg = AuditConfig::load(&root.join("audit.toml")).expect("fixture audit.toml parses");
    let (diags, summary) = check_workspace(&root, &cfg).expect("fixture scan runs");
    let rendered = diag::render(&diags);

    let golden_path = root.join("expected.txt");
    if std::env::var_os("VITA_BLESS").is_some() {
        std::fs::write(&golden_path, &rendered).expect("write golden");
    }
    let expected = std::fs::read_to_string(&golden_path).expect("read golden");
    assert_eq!(
        rendered, expected,
        "fixture diagnostics drifted from tests/fixtures/expected.txt;\n\
         rerun with VITA_BLESS=1 to regenerate after verifying the diff"
    );

    assert_eq!(summary.crates, 2, "fixture tree holds exactly two crates");
    assert!(!diags.is_empty(), "the known-bad fixture must not be clean");
}

/// The lexer-hardening half of the fixture: decoy text inside strings,
/// raw strings, char literals, and comments never reaches a diagnostic.
#[test]
fn decoys_and_test_code_stay_silent() {
    let root = fixture_root();
    let cfg = AuditConfig::load(&root.join("audit.toml")).expect("fixture audit.toml parses");
    let (diags, _) = check_workspace(&root, &cfg).expect("fixture scan runs");

    let src = std::fs::read_to_string(root.join("known_bad/src/lib.rs")).expect("fixture source");
    let decoy_start = src
        .lines()
        .position(|l| l.contains("fn decoys"))
        .expect("decoys fn present")
        + 1;
    for d in &diags {
        assert!(
            (d.line as usize) < decoy_start,
            "diagnostic fired inside the decoy/test region: {d}"
        );
    }
}
