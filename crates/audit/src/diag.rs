//! Diagnostics: what the audit reports and how it prints.

/// One finding: `file:line:col RID message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the scanned workspace root, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule id: `R1`…`R6`, or `A1`/`A2`/`A3` for annotation errors.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub msg: String,
}

impl Diagnostic {
    pub fn new(file: &str, line: u32, col: u32, rule: &'static str, msg: String) -> Self {
        Diagnostic {
            file: file.to_string(),
            line,
            col,
            rule,
            msg,
        }
    }

    /// The stable sort key: file path, then position, then rule.
    fn key(&self) -> (&str, u32, u32, &'static str) {
        (&self.file, self.line, self.col, self.rule)
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{} {} {}",
            self.file, self.line, self.col, self.rule, self.msg
        )
    }
}

/// Sort diagnostics into the canonical reporting order (by file, then
/// position, then rule id) so output is stable across runs and platforms.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| a.key().cmp(&b.key()));
}

/// Render one diagnostic per line, canonical order assumed.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_order() {
        let mut ds = vec![
            Diagnostic::new("b.rs", 1, 1, "R2", "x".into()),
            Diagnostic::new("a.rs", 9, 2, "R4", "y".into()),
            Diagnostic::new("a.rs", 9, 1, "R1", "z".into()),
        ];
        sort(&mut ds);
        assert_eq!(render(&ds), "a.rs:9:1 R1 z\na.rs:9:2 R4 y\nb.rs:1:1 R2 x\n");
    }
}
