//! The checked-in audit configuration: which crates each rule applies
//! to, and which paths are sanctioned exceptions.
//!
//! Hand-rolled parser for a tiny sectioned dialect (the same no-serde
//! spirit as the `.lab` spec parser): `#` comments, `[section]` headers,
//! `key = a, b, c` comma-separated value lists. Sections are either the
//! global `[scan]` or one `[rule RN]` per rule. Example:
//!
//! ```text
//! [scan]
//! roots = crates
//!
//! [rule R1]
//! crates = mobility, rssi
//!
//! [rule R2]
//! allow = storage/src/codec.rs, bench/src
//! ```
//!
//! Path entries are `crate-relative` prefixes: `storage/src/codec.rs`
//! matches that file, `bench/src` matches the whole subtree. Rule
//! applicability is by crate directory name (`crates = …`); rules with no
//! `crates` key apply to every crate.

use std::collections::BTreeMap;
use std::path::Path;

/// All rule IDs the engine knows. Annotation rule-ids are validated
/// against this list.
pub const RULE_IDS: [&str; 6] = ["R1", "R2", "R3", "R4", "R5", "R6"];

/// Per-rule applicability and sanctioned paths.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleConfig {
    /// Crate directory names the rule applies to; empty = all crates.
    pub crates: Vec<String>,
    /// Crate-relative path prefixes where the rule never fires
    /// (`storage/src/codec.rs`, `bench/src`, …).
    pub allow: Vec<String>,
}

/// The parsed `audit.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditConfig {
    /// Directories (relative to the config file) whose direct children
    /// are crates — a crate is any child with a `src/` subdirectory.
    pub roots: Vec<String>,
    /// Per-rule settings keyed by rule id.
    pub rules: BTreeMap<String, RuleConfig>,
}

/// Why a config failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Structurally invalid line (no `=`, bad section header, …).
    Malformed { line: u32, msg: String },
    /// A `[rule …]` section names an id the engine does not implement.
    UnknownRule { line: u32, id: String },
    /// The file could not be read.
    Io(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Malformed { line, msg } => write!(f, "audit config line {line}: {msg}"),
            ConfigError::UnknownRule { line, id } => {
                write!(f, "audit config line {line}: unknown rule id '{id}'")
            }
            ConfigError::Io(msg) => write!(f, "audit config: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl AuditConfig {
    /// Read and parse a config file.
    pub fn load(path: &Path) -> Result<Self, ConfigError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ConfigError::Io(format!("{}: {e}", path.display())))?;
        Self::parse(&text)
    }

    /// Parse config text.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut cfg = AuditConfig {
            roots: Vec::new(),
            rules: BTreeMap::new(),
        };
        // Section currently being filled: None = before any header,
        // Some(None) = [scan], Some(Some(id)) = [rule id].
        let mut section: Option<Option<String>> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let header = header.strip_suffix(']').ok_or(ConfigError::Malformed {
                    line: lineno,
                    msg: "section header missing ']'".into(),
                })?;
                section = Some(parse_header(header, lineno, &mut cfg)?);
                continue;
            }
            let (key, values) = parse_kv(line, lineno)?;
            match &section {
                None => {
                    return Err(ConfigError::Malformed {
                        line: lineno,
                        msg: format!("key '{key}' before any [section]"),
                    })
                }
                Some(None) => match key.as_str() {
                    "roots" => cfg.roots = values,
                    _ => {
                        return Err(ConfigError::Malformed {
                            line: lineno,
                            msg: format!("unknown [scan] key '{key}'"),
                        })
                    }
                },
                Some(Some(id)) => {
                    let rule = cfg.rules.entry(id.clone()).or_default();
                    match key.as_str() {
                        "crates" => rule.crates = values,
                        "allow" => rule.allow = values,
                        _ => {
                            return Err(ConfigError::Malformed {
                                line: lineno,
                                msg: format!("unknown [rule {id}] key '{key}'"),
                            })
                        }
                    }
                }
            }
        }
        if cfg.roots.is_empty() {
            cfg.roots.push("crates".to_string());
        }
        Ok(cfg)
    }

    /// Settings for a rule (default-empty if the config has no section —
    /// the rule then applies to every crate with no allowed paths).
    pub fn rule(&self, id: &str) -> RuleConfig {
        self.rules.get(id).cloned().unwrap_or_default()
    }

    /// Does `rule` apply inside crate directory `crate_name`?
    pub fn applies_to_crate(&self, rule: &str, crate_name: &str) -> bool {
        let r = self.rule(rule);
        r.crates.is_empty() || r.crates.iter().any(|c| c == crate_name)
    }

    /// Is the crate-relative `path` (e.g. `storage/src/codec.rs`) on the
    /// rule's allow list? Entries match exactly or as directory prefixes.
    pub fn path_allowed(&self, rule: &str, path: &str) -> bool {
        self.rule(rule).allow.iter().any(|entry| {
            path == entry || (path.starts_with(entry) && path[entry.len()..].starts_with('/'))
        })
    }
}

fn parse_header(
    header: &str,
    lineno: u32,
    cfg: &mut AuditConfig,
) -> Result<Option<String>, ConfigError> {
    let header = header.trim();
    if header == "scan" {
        return Ok(None);
    }
    if let Some(id) = header.strip_prefix("rule ") {
        let id = id.trim().to_string();
        if !RULE_IDS.contains(&id.as_str()) {
            return Err(ConfigError::UnknownRule { line: lineno, id });
        }
        cfg.rules.entry(id.clone()).or_default();
        return Ok(Some(id));
    }
    Err(ConfigError::Malformed {
        line: lineno,
        msg: format!("unknown section '[{header}]' (expected [scan] or [rule RN])"),
    })
}

fn parse_kv(line: &str, lineno: u32) -> Result<(String, Vec<String>), ConfigError> {
    let (key, value) = line.split_once('=').ok_or(ConfigError::Malformed {
        line: lineno,
        msg: format!("expected 'key = values', got '{line}'"),
    })?;
    let values = value
        .split(',')
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
        .collect();
    Ok((key.trim().to_string(), values))
}

/// Strip a trailing `#` comment (the format has no quoted strings, so a
/// bare `#` always starts a comment).
fn strip_comment(line: &str) -> &str {
    line.split_once('#').map_or(line, |(head, _)| head)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# workspace audit config
[scan]
roots = crates

[rule R1]  # determinism
crates = mobility, rssi

[rule R2]
allow = storage/src/codec.rs, bench/src
";

    #[test]
    fn parses_sections_and_lists() {
        let cfg = AuditConfig::parse(SAMPLE).unwrap();
        assert_eq!(cfg.roots, ["crates"]);
        assert_eq!(cfg.rule("R1").crates, ["mobility", "rssi"]);
        assert_eq!(cfg.rule("R2").allow, ["storage/src/codec.rs", "bench/src"]);
    }

    #[test]
    fn applicability_defaults_to_all_crates() {
        let cfg = AuditConfig::parse(SAMPLE).unwrap();
        assert!(cfg.applies_to_crate("R1", "rssi"));
        assert!(!cfg.applies_to_crate("R1", "storage"));
        // R3 has no section at all -> applies everywhere.
        assert!(cfg.applies_to_crate("R3", "storage"));
    }

    #[test]
    fn path_allow_matches_file_and_subtree() {
        let cfg = AuditConfig::parse(SAMPLE).unwrap();
        assert!(cfg.path_allowed("R2", "storage/src/codec.rs"));
        assert!(cfg.path_allowed("R2", "bench/src/bin/experiments.rs"));
        // Prefix must stop at a path boundary.
        assert!(!cfg.path_allowed("R2", "bench/src2/x.rs"));
        assert!(!cfg.path_allowed("R2", "storage/src/codec.rs.bak"));
        assert!(!cfg.path_allowed("R2", "storage/src/segment.rs"));
    }

    #[test]
    fn rejects_unknown_rule_and_bad_lines() {
        assert!(matches!(
            AuditConfig::parse("[rule R9]\n"),
            Err(ConfigError::UnknownRule { line: 1, .. })
        ));
        assert!(matches!(
            AuditConfig::parse("[scan]\nnonsense\n"),
            Err(ConfigError::Malformed { line: 2, .. })
        ));
        assert!(matches!(
            AuditConfig::parse("key = before section\n"),
            Err(ConfigError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            AuditConfig::parse("[weird]\n"),
            Err(ConfigError::Malformed { line: 1, .. })
        ));
    }

    #[test]
    fn empty_config_scans_crates_everywhere() {
        let cfg = AuditConfig::parse("").unwrap();
        assert_eq!(cfg.roots, ["crates"]);
        assert!(cfg.applies_to_crate("R4", "anything"));
        assert!(!cfg.path_allowed("R4", "anything/src/lib.rs"));
    }
}
