#![forbid(unsafe_code)]
//! # vita-audit
//!
//! The workspace static-analysis pass: a dependency-free lexer + rule
//! engine that turns the ARCHITECTURE.md invariants from prose into an
//! executable gate. `cargo run -p vita-audit -- check` walks every crate
//! under the configured scan roots, lexes each source file with a
//! hand-rolled Rust [`lexer`] (so rule text inside comments, strings, raw
//! strings, and char literals never triggers), applies the [`rules`]
//! R1–R6 under the checked-in `audit.toml` [`config`], and exits non-zero
//! with `file:line:col rule message` [`diag`]nostics on any violation.
//!
//! The dynamic suites (lab matrix determinism, spill corruption fuzz)
//! check these invariants on the paths they execute; the audit checks
//! them on **every line**, before CI ever runs a test.

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;

pub use config::{AuditConfig, ConfigError};
pub use diag::Diagnostic;

use std::path::{Path, PathBuf};

/// Scan statistics, for the CLI summary line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckSummary {
    pub crates: usize,
    pub files: usize,
}

/// Why a check could not run at all (distinct from "ran and found
/// violations" — that is a non-empty diagnostics list).
#[derive(Debug)]
pub enum AuditError {
    Config(ConfigError),
    Io(String),
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::Config(e) => write!(f, "{e}"),
            AuditError::Io(msg) => write!(f, "audit: {msg}"),
        }
    }
}

impl std::error::Error for AuditError {}

impl From<ConfigError> for AuditError {
    fn from(e: ConfigError) -> Self {
        AuditError::Config(e)
    }
}

/// Run the full audit over `root` (the directory `audit.toml` paths are
/// relative to). Returns canonically sorted diagnostics — empty means the
/// workspace upholds every checked invariant.
pub fn check_workspace(
    root: &Path,
    cfg: &AuditConfig,
) -> Result<(Vec<Diagnostic>, CheckSummary), AuditError> {
    let mut diags = Vec::new();
    let mut summary = CheckSummary::default();
    for scan_root in &cfg.roots {
        let dir = root.join(scan_root);
        for crate_dir in sorted_dirs(&dir)? {
            let src = crate_dir.join("src");
            if !src.is_dir() {
                continue;
            }
            summary.crates += 1;
            check_crate(scan_root, &crate_dir, cfg, &mut diags, &mut summary)?;
        }
    }
    diag::sort(&mut diags);
    Ok((diags, summary))
}

/// Audit one crate directory: every `.rs` under `src/`, then the
/// crate-level half of R5 (`#![forbid(unsafe_code)]` when no file in the
/// crate contains `unsafe`).
fn check_crate(
    scan_root: &str,
    crate_dir: &Path,
    cfg: &AuditConfig,
    diags: &mut Vec<Diagnostic>,
    summary: &mut CheckSummary,
) -> Result<(), AuditError> {
    let crate_name = file_name(crate_dir);
    let mut files = Vec::new();
    collect_rs_files(&crate_dir.join("src"), &mut files)?;
    files.sort();

    let mut unsafe_total = 0usize;
    // (display path, match path, has forbid) of src/lib.rs — or of
    // src/main.rs when the crate is a pure binary.
    let mut root_file: Option<(String, String, bool)> = None;
    for file in &files {
        summary.files += 1;
        let text = std::fs::read_to_string(file)
            .map_err(|e| AuditError::Io(format!("{}: {e}", file.display())))?;
        let match_path = rel_path(crate_dir.parent().unwrap_or(crate_dir), file);
        let display_path = display_path(scan_root, &match_path);
        let report = rules::check_file(&crate_name, &display_path, &match_path, &text, cfg);
        unsafe_total += report.unsafe_count;
        let is_root =
            file.ends_with("src/lib.rs") || (root_file.is_none() && file.ends_with("src/main.rs"));
        if is_root {
            root_file = Some((
                display_path.clone(),
                match_path.clone(),
                report.has_forbid_unsafe,
            ));
        }
        diags.extend(report.diags);
    }

    if let Some((root_path, match_root, has_forbid)) = root_file {
        let r5_on = cfg.applies_to_crate("R5", &crate_name) && !cfg.path_allowed("R5", &match_root);
        if unsafe_total == 0 && !has_forbid && r5_on {
            diags.push(Diagnostic::new(
                &root_path,
                1,
                1,
                "R5",
                "crate has no unsafe code but its root does not declare `#![forbid(unsafe_code)]`"
                    .into(),
            ));
        }
    }
    Ok(())
}

/// `root`-relative `/`-separated path of `file`.
fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// What diagnostics print: the scan root re-attached (unless it is `.`).
fn display_path(scan_root: &str, match_path: &str) -> String {
    if scan_root == "." {
        match_path.to_string()
    } else {
        format!("{scan_root}/{match_path}")
    }
}

fn file_name(p: &Path) -> String {
    p.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

/// Direct child directories of `dir`, name-sorted for stable output.
fn sorted_dirs(dir: &Path) -> Result<Vec<PathBuf>, AuditError> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| AuditError::Io(format!("{}: {e}", dir.display())))?;
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| AuditError::Io(format!("{}: {e}", dir.display())))?;
        if entry.path().is_dir() {
            out.push(entry.path());
        }
    }
    out.sort();
    Ok(out)
}

/// Every `.rs` file under `dir`, recursively.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), AuditError> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| AuditError::Io(format!("{}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| AuditError::Io(format!("{}: {e}", dir.display())))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
