//! A hand-rolled Rust lexer, just deep enough that rules match real
//! tokens.
//!
//! The whole point of lexing (instead of grepping) is that rule text
//! inside comments, string literals, raw strings, and char literals must
//! never trigger a diagnostic: `// don't call Instant::now here` and
//! `r#"…unwrap()…"#` are data, not code. The lexer therefore handles the
//! token shapes where a naive scanner goes wrong:
//!
//! * strings with escapes (`"\""`), byte strings (`b"…"`),
//! * raw strings with any hash depth (`r"…"`, `r#"…"#`, `br##"…"##`),
//! * raw identifiers (`r#fn`),
//! * char literals incl. `'"'`, `'\''`, `'\u{1F980}'`,
//! * lifetimes (`'a`) disambiguated from char literals,
//! * nested block comments (`/* /* */ */`) and doc comments.
//!
//! Comments are **kept** in the token stream — the rule engine reads them
//! for `// SAFETY:` and `// audit: allow(..)` annotations. Whitespace is
//! dropped. Everything else (numbers, punctuation) is tokenized loosely:
//! the rules only ever match identifiers, comments, and single-char
//! punctuation, so a `Punct` per symbol character is all they need.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unsafe` and `fs` both land here).
    Ident,
    /// A raw identifier, `r#type` — `text` keeps the `r#` prefix.
    RawIdent,
    /// A lifetime, `'a` (including `'_` and `'static`).
    Lifetime,
    /// A char literal, `'x'`, `'\n'`, `'"'`.
    CharLit,
    /// A byte literal, `b'x'`.
    ByteLit,
    /// A normal (escaped) string literal, `"…"` or `b"…"`.
    StrLit,
    /// A raw string literal, `r"…"`, `r#"…"#`, `br##"…"##`.
    RawStrLit,
    /// A numeric literal (integer or float, any base).
    NumLit,
    /// A `//` line comment (incl. `///` and `//!` doc comments).
    LineComment,
    /// A `/* … */` block comment (nesting handled), incl. `/** … */`.
    BlockComment,
    /// One punctuation / operator character: `.`, `:`, `!`, `{`, …
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token<'a> {
    pub kind: TokenKind,
    /// The exact source slice, prefix and quotes included.
    pub text: &'a str,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token<'_> {
    /// True for the two comment kinds.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// The line this token ends on (only comments and raw strings span
    /// lines; everything else ends where it starts).
    pub fn end_line(&self) -> u32 {
        self.line + self.text.matches('\n').count() as u32
    }
}

/// Lex `src` into tokens. Never fails: unterminated literals and stray
/// characters degrade to best-effort tokens so the audit can still scan
/// the rest of the file (rustc will reject such a file anyway).
pub fn lex(src: &str) -> Vec<Token<'_>> {
    Lexer {
        src,
        chars: src.char_indices().peekable(),
        line: 1,
        col: 1,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        let mut out = Vec::new();
        while let Some(&(start, c)) = self.chars.peek() {
            let (line, col) = (self.line, self.col);
            let kind = self.next_kind(c);
            let end = self.chars.peek().map_or(self.src.len(), |&(i, _)| i);
            if let Some(kind) = kind {
                out.push(Token {
                    kind,
                    text: &self.src[start..end],
                    line,
                    col,
                });
            }
        }
        out
    }

    /// Consume one lexeme starting with `c`; `None` means whitespace.
    fn next_kind(&mut self, c: char) -> Option<TokenKind> {
        match c {
            _ if c.is_whitespace() => {
                self.bump();
                None
            }
            '/' if self.peek_second() == Some('/') => {
                self.eat_line_comment();
                Some(TokenKind::LineComment)
            }
            '/' if self.peek_second() == Some('*') => {
                self.eat_block_comment();
                Some(TokenKind::BlockComment)
            }
            'r' | 'b' => Some(self.eat_prefixed(c)),
            '"' => {
                self.eat_string();
                Some(TokenKind::StrLit)
            }
            '\'' => Some(self.eat_quote()),
            _ if c.is_ascii_digit() => {
                self.eat_number();
                Some(TokenKind::NumLit)
            }
            _ if is_ident_start(c) => {
                self.eat_ident();
                Some(TokenKind::Ident)
            }
            _ => {
                self.bump();
                Some(TokenKind::Punct)
            }
        }
    }

    /// `r…` / `b…`: raw string, raw ident, byte string, byte char — or
    /// just an identifier that happens to start with `r`/`b`.
    fn eat_prefixed(&mut self, first: char) -> TokenKind {
        // Look at what follows without consuming: prefix detection needs
        // up to two chars (`br`, `r#`).
        let rest = self.rest();
        let tail = &rest[first.len_utf8()..];
        match first {
            'r' if tail.starts_with('"') || tail.starts_with('#') => {
                if let Some(k) = self.try_raw_after_r(tail) {
                    return k;
                }
            }
            'b' if tail.starts_with('"') => {
                self.bump(); // b
                self.eat_string();
                return TokenKind::StrLit;
            }
            'b' if tail.starts_with('\'') => {
                self.bump(); // b
                self.bump(); // '
                self.eat_char_body();
                return TokenKind::ByteLit;
            }
            'b' if tail.starts_with("r\"") || tail.starts_with("r#") => {
                let after_r = &tail[1..];
                if after_r.starts_with('"') || raw_hash_quote(after_r) {
                    self.bump(); // b
                    self.bump(); // r
                    self.eat_raw_string();
                    return TokenKind::RawStrLit;
                }
            }
            _ => {}
        }
        self.eat_ident();
        TokenKind::Ident
    }

    /// After an `r`, decide raw string (`r"`, `r#…#"`) vs raw ident
    /// (`r#ident`). `tail` is the source just past the `r`.
    fn try_raw_after_r(&mut self, tail: &str) -> Option<TokenKind> {
        if tail.starts_with('"') || raw_hash_quote(tail) {
            self.bump(); // r
            self.eat_raw_string();
            return Some(TokenKind::RawStrLit);
        }
        // `r#ident` — one hash, then ident chars.
        if let Some(after) = tail.strip_prefix('#') {
            if after.chars().next().is_some_and(is_ident_start) {
                self.bump(); // r
                self.bump(); // #
                self.eat_ident();
                return Some(TokenKind::RawIdent);
            }
        }
        None
    }

    /// `'` — lifetime or char literal. A lifetime is `'` + ident run NOT
    /// followed by a closing `'`; anything else is a char literal.
    fn eat_quote(&mut self) -> TokenKind {
        let tail = &self.rest()['\''.len_utf8()..];
        let mut it = tail.chars();
        let first = it.next();
        if let Some(f) = first {
            if is_ident_start(f) {
                // Count the ident run; a `'` right after makes it a char
                // literal ('a'), otherwise it is a lifetime ('a, 'static).
                let run: usize = tail
                    .chars()
                    .take_while(|&c| c.is_alphanumeric() || c == '_')
                    .map(char::len_utf8)
                    .sum();
                if !tail[run..].starts_with('\'') {
                    self.bump(); // '
                    self.eat_ident();
                    return TokenKind::Lifetime;
                }
            }
        }
        self.bump(); // '
        self.eat_char_body();
        TokenKind::CharLit
    }

    /// The inside + closing quote of a char/byte literal; handles `'\''`,
    /// `'\u{…}'`, `'"'`.
    fn eat_char_body(&mut self) {
        while let Some(&(_, c)) = self.chars.peek() {
            self.bump();
            match c {
                '\\' => {
                    self.bump(); // the escaped char, whatever it is
                }
                '\'' => return,
                '\n' => return, // unterminated — abandon at line end
                _ => {}
            }
        }
    }

    /// The inside + closing quote of a `"…"` string (opening quote still
    /// pending). Handles `\"` and `\\`.
    fn eat_string(&mut self) {
        self.bump(); // opening "
        while let Some(&(_, c)) = self.chars.peek() {
            self.bump();
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => return,
                _ => {}
            }
        }
    }

    /// A raw string starting at `#…#"` or `"` (the `r`/`br` prefix is
    /// already consumed): count hashes, then scan to `"` + same hashes.
    fn eat_raw_string(&mut self) {
        let mut hashes = 0usize;
        while self.chars.peek().is_some_and(|&(_, c)| c == '#') {
            self.bump();
            hashes += 1;
        }
        self.bump(); // opening "
        loop {
            match self.chars.peek() {
                None => return, // unterminated
                Some(&(_, '"')) => {
                    self.bump();
                    let mut seen = 0usize;
                    while seen < hashes && self.chars.peek().is_some_and(|&(_, c)| c == '#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        return;
                    }
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn eat_line_comment(&mut self) {
        self.eat_while(|c| c != '\n');
    }

    /// `/* … */` with nesting, as rustc lexes it.
    fn eat_block_comment(&mut self) {
        self.bump(); // /
        self.bump(); // *
        let mut depth = 1usize;
        while depth > 0 {
            match (self.chars.peek().map(|&(_, c)| c), self.peek_second()) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => return, // unterminated
            }
        }
    }

    fn eat_ident(&mut self) {
        self.eat_while(|c| c.is_alphanumeric() || c == '_');
    }

    /// A numeric literal. A `.` is part of the number only when a digit
    /// follows — `x.0.unwrap()` must lex `0` alone so the `.unwrap(`
    /// after a tuple-field access still surfaces as tokens.
    fn eat_number(&mut self) {
        loop {
            self.eat_while(|c| c.is_alphanumeric() || c == '_');
            let rest = self.rest();
            let mut it = rest.chars();
            if it.next() == Some('.') && it.next().is_some_and(|c| c.is_ascii_digit()) {
                self.bump(); // the '.'
                continue;
            }
            return;
        }
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while self.chars.peek().is_some_and(|&(_, c)| pred(c)) {
            self.bump();
        }
    }

    /// Advance one char, tracking line/col.
    fn bump(&mut self) {
        if let Some((_, c)) = self.chars.next() {
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }

    /// The not-yet-consumed tail of the source.
    fn rest(&mut self) -> &'a str {
        let i = self.chars.peek().map_or(self.src.len(), |&(i, _)| i);
        &self.src[i..]
    }

    /// The char after the current one, without consuming either.
    fn peek_second(&mut self) -> Option<char> {
        let rest = self.rest();
        let mut it = rest.chars();
        it.next();
        it.next()
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// Does `s` look like `#…#"` (≥1 hash then a quote)?
fn raw_hash_quote(s: &str) -> bool {
    let hashes: usize = s.chars().take_while(|&c| c == '#').count();
    hashes > 0 && s[hashes..].starts_with('"')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    /// Identifiers inside ordinary code are found with exact positions.
    #[test]
    fn idents_and_positions() {
        let toks = lex("fn main() {\n    now();\n}\n");
        let now = toks.iter().find(|t| t.text == "now").unwrap();
        assert_eq!((now.line, now.col), (2, 5));
        assert_eq!(now.kind, TokenKind::Ident);
    }

    /// A raw string containing `unwrap()` is one RawStrLit token — the
    /// word never surfaces as an identifier.
    #[test]
    fn raw_string_hides_unwrap() {
        let toks = kinds(r##"let s = r#"x.unwrap() // not code"#;"##);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::RawStrLit && t.contains("unwrap")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "unwrap"));
    }

    /// Nested block comments swallow everything down to the matching
    /// close — including rule-triggering text and inner `/* … */` pairs.
    #[test]
    fn nested_block_comment() {
        let toks = kinds("/* a /* Instant::now() */ b */ after");
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[1], (TokenKind::Ident, "after"));
        assert_eq!(toks.len(), 2);
    }

    /// `'"'` is a char literal; the `"` inside must not open a string.
    #[test]
    fn char_literal_double_quote() {
        let toks = kinds(r#"let c = '"'; sleep();"#);
        assert!(toks.contains(&(TokenKind::CharLit, "'\"'")));
        assert!(toks.contains(&(TokenKind::Ident, "sleep")));
    }

    /// `'\''` and `'\u{1F980}'` terminate where they should.
    #[test]
    fn escaped_char_literals() {
        let toks = kinds(r"let a = '\''; let b = '\u{1F980}'; tail");
        assert!(toks.contains(&(TokenKind::CharLit, r"'\''")));
        assert!(toks.contains(&(TokenKind::CharLit, r"'\u{1F980}'")));
        assert!(toks.contains(&(TokenKind::Ident, "tail")));
    }

    /// Lifetimes are not char literals: `&'a str` lexes `'a` as a
    /// lifetime, while `'a'` right after still lexes as a char.
    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert!(toks.contains(&(TokenKind::CharLit, "'a'")));
        assert!(toks.contains(&(TokenKind::Lifetime, "'a")));
    }

    /// `'static` in `&'static str` is a lifetime even though it is long.
    #[test]
    fn static_lifetime() {
        let toks = kinds("x: &'static str");
        assert!(toks.contains(&(TokenKind::Lifetime, "'static")));
    }

    /// A raw string with embedded `//` does not start a comment, and the
    /// hash-depth must match to close (`"#` inside `r##"…"##` stays in).
    #[test]
    fn raw_string_embedded_comment_and_hashes() {
        let src = r###"let s = r##"a // b "# c"##; done()"###;
        let toks = kinds(src);
        assert_eq!(
            toks.iter()
                .find(|(k, _)| *k == TokenKind::RawStrLit)
                .unwrap()
                .1,
            r###"r##"a // b "# c"##"###
        );
        assert!(toks.contains(&(TokenKind::Ident, "done")));
    }

    /// Byte strings and raw byte strings lex as string kinds.
    #[test]
    fn byte_strings() {
        let toks = kinds(r###"let a = b"x"; let b = br#"y"#; let c = b'z';"###);
        assert!(toks.contains(&(TokenKind::StrLit, "b\"x\"")));
        assert!(toks.contains(&(TokenKind::RawStrLit, "br#\"y\"#")));
        assert!(toks.contains(&(TokenKind::ByteLit, "b'z'")));
    }

    /// `r#type` is a raw identifier, not a raw string or `r` ident.
    #[test]
    fn raw_ident() {
        let toks = kinds("let r#type = 1; rest");
        assert!(toks.contains(&(TokenKind::RawIdent, "r#type")));
        assert!(toks.contains(&(TokenKind::Ident, "rest")));
    }

    /// Escaped quotes inside normal strings do not terminate them.
    #[test]
    fn escaped_string_quote() {
        let toks = kinds(r#"let s = "a \" b \\"; next"#);
        assert!(toks.contains(&(TokenKind::StrLit, r#""a \" b \\""#)));
        assert!(toks.contains(&(TokenKind::Ident, "next")));
    }

    /// Line comments keep their text (the rule engine reads them) and end
    /// at the newline.
    #[test]
    fn line_comment_text() {
        let toks = lex("code(); // SAFETY: fine\nmore();");
        let c = toks
            .iter()
            .find(|t| t.kind == TokenKind::LineComment)
            .unwrap();
        assert_eq!(c.text, "// SAFETY: fine");
        assert_eq!(c.line, 1);
        assert!(toks.iter().any(|t| t.text == "more"));
    }

    /// Doc comments (`///`, `//!`) are comments — rule text inside them
    /// must not match; `/** */` is a block comment.
    #[test]
    fn doc_comments_are_comments() {
        let toks = kinds("/// std::fs::write(x)\n//! thread::sleep\n/** println! */ x");
        assert_eq!(toks[0].0, TokenKind::LineComment);
        assert_eq!(toks[1].0, TokenKind::LineComment);
        assert_eq!(toks[2].0, TokenKind::BlockComment);
        assert_eq!(toks[3], (TokenKind::Ident, "x"));
    }

    /// Numbers (including float method-call ambiguity like `1.0e3` and
    /// underscores) lex as single numeric tokens, not idents.
    #[test]
    fn numbers() {
        let toks = kinds("let x = 1_000.5e3; let y = 0xFFu32;");
        assert!(toks.contains(&(TokenKind::NumLit, "1_000.5e3")));
        assert!(toks.contains(&(TokenKind::NumLit, "0xFFu32")));
    }

    /// Tuple-field access followed by a method call keeps the method name
    /// as its own identifier: `x.0.unwrap()` must not lex `0.unwrap` as
    /// one number.
    #[test]
    fn tuple_field_method_call() {
        let toks = kinds("x.0.unwrap()");
        assert!(toks.contains(&(TokenKind::NumLit, "0")));
        assert!(toks.contains(&(TokenKind::Ident, "unwrap")));
    }

    /// Multi-line raw strings report the right end line, and tokens after
    /// them carry correct positions.
    #[test]
    fn multiline_positions() {
        let src = "let s = r#\"a\nb\nc\"#;\nlast();";
        let toks = lex(src);
        let raw = toks
            .iter()
            .find(|t| t.kind == TokenKind::RawStrLit)
            .unwrap();
        assert_eq!(raw.line, 1);
        assert_eq!(raw.end_line(), 3);
        let last = toks.iter().find(|t| t.text == "last").unwrap();
        assert_eq!((last.line, last.col), (4, 1));
    }

    /// An `unwrap` spelled inside a normal string never becomes an ident.
    #[test]
    fn string_hides_idents() {
        let toks = kinds(r#"let m = "call .unwrap() or thread::sleep"; ok"#);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Ident).count(),
            3 // let, m, ok
        );
    }
}
