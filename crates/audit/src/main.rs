#![forbid(unsafe_code)]
// A CLI's diagnostics ARE its stdout/stderr contract (audit.toml's R6
// carves out the same exemption for this file).
#![allow(clippy::print_stdout, clippy::print_stderr)]
//! `vita-audit` CLI: `cargo run -p vita-audit -- check [--root DIR]
//! [--config FILE]`.
//!
//! Prints one `file:line:col rule message` line per violation and exits
//! 1; exits 0 on a clean workspace, 2 when the check itself could not run
//! (bad config, unreadable tree).

use std::path::PathBuf;
use std::process::ExitCode;

use vita_audit::{check_workspace, AuditConfig};

const USAGE: &str = "usage: vita-audit check [--root DIR] [--config FILE]\n\
     \n\
     Walks every crate under the scan roots in the audit config\n\
     (default: ROOT/audit.toml) and reports invariant violations as\n\
     `file:line:col rule message` diagnostics. Exit codes: 0 clean,\n\
     1 violations found, 2 the audit could not run.";

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: Vec<String>) -> Result<ExitCode, String> {
    let mut args = args.into_iter();
    match args.next().as_deref() {
        Some("check") => {}
        Some("--help") | Some("-h") | None => return Err(USAGE.to_string()),
        Some(other) => return Err(format!("unknown command '{other}'\n{USAGE}")),
    }
    let mut root = PathBuf::from(".");
    let mut config: Option<PathBuf> = None;
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--root" => root = PathBuf::from(value("--root")?),
            "--config" => config = Some(PathBuf::from(value("--config")?)),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    let config = config.unwrap_or_else(|| root.join("audit.toml"));
    let cfg = AuditConfig::load(&config).map_err(|e| e.to_string())?;
    let (diags, summary) = check_workspace(&root, &cfg).map_err(|e| e.to_string())?;
    if diags.is_empty() {
        println!(
            "audit clean: {} crates, {} files, 0 violations",
            summary.crates, summary.files
        );
        return Ok(ExitCode::SUCCESS);
    }
    for d in &diags {
        println!("{d}");
    }
    eprintln!(
        "audit: {} violation(s) across {} crates, {} files",
        diags.len(),
        summary.crates,
        summary.files
    );
    Ok(ExitCode::from(1))
}
