//! The rule engine: token-level matchers for the workspace's real
//! contracts, plus the `// audit: allow(..)` annotation machinery.
//!
//! | id | invariant |
//! |----|-----------|
//! | R1 | no wall-clock / ambient randomness in deterministic crates |
//! | R2 | no file I/O outside the sanctioned persistence modules |
//! | R3 | no blocking sleeps / spin loops outside sanctioned pacing |
//! | R4 | no `.unwrap()` / `.expect(` in non-test engine code |
//! | R5 | `unsafe` needs `// SAFETY:`; unsafe-free crates need `#![forbid(unsafe_code)]` |
//! | R6 | no `println!` / `eprintln!` in library code |
//! | A1 | malformed / unknown-rule audit annotation |
//! | A2 | unused `audit: allow` annotation |
//! | A3 | `audit: allow` without a justification |
//!
//! Matchers run over the **code** token view (comments filtered out), so
//! `thread /* paced */ ::sleep` still matches and rule text inside
//! comments or string literals never does. Code under `#[cfg(test)]` is
//! masked for R1–R4/R6 — tests legitimately sleep, unwrap, and touch
//! disk. R5 looks at every `unsafe` token, test or not, because
//! `#![forbid(unsafe_code)]` is crate-wide.

use crate::config::{AuditConfig, RULE_IDS};
use crate::diag::Diagnostic;
use crate::lexer::{lex, Token, TokenKind};

/// Everything the per-file pass produces.
#[derive(Debug, Default)]
pub struct FileReport {
    pub diags: Vec<Diagnostic>,
    /// Number of `unsafe` keyword tokens (test code included).
    pub unsafe_count: usize,
    /// Whether the file carries the inner `#![forbid(unsafe_code)]`.
    pub has_forbid_unsafe: bool,
}

/// An `// audit: allow(RN) justification` annotation mid-check.
struct Allow {
    rule: String,
    /// The source line the allow suppresses (its own line when trailing,
    /// the next line when the comment stands alone).
    target_line: u32,
    line: u32,
    col: u32,
    used: bool,
}

/// Audit one file. `display_path` is what diagnostics print (workspace
/// relative); `match_path` is what the config allow lists match
/// (scan-root relative, e.g. `storage/src/codec.rs`); `crate_name` keys
/// per-crate rule applicability.
pub fn check_file(
    crate_name: &str,
    display_path: &str,
    match_path: &str,
    src: &str,
    cfg: &AuditConfig,
) -> FileReport {
    let tokens = lex(src);
    let code: Vec<&Token<'_>> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let masked = test_mask(&code);
    let (mut allows, annotation_diags) = collect_allows(&tokens, display_path);
    let mut report = FileReport {
        has_forbid_unsafe: has_forbid_unsafe(&code),
        ..FileReport::default()
    };
    report.diags.extend(annotation_diags);

    let mut raw: Vec<Diagnostic> = Vec::new();
    let rule_on =
        |rule: &str| cfg.applies_to_crate(rule, crate_name) && !cfg.path_allowed(rule, match_path);

    for (i, tok) in code.iter().enumerate() {
        if tok.kind == TokenKind::Ident && tok.text == "unsafe" {
            report.unsafe_count += 1;
            if rule_on("R5") && !has_safety_comment(&tokens, tok.line) {
                raw.push(Diagnostic::new(
                    display_path,
                    tok.line,
                    tok.col,
                    "R5",
                    "`unsafe` without a `// SAFETY:` comment on the preceding lines".into(),
                ));
            }
        }
        if masked[i] {
            continue; // test code: R1-R4/R6 do not apply
        }
        if rule_on("R1") {
            r1_determinism(&code, i, display_path, &mut raw);
        }
        if rule_on("R2") {
            r2_file_io(&code, i, display_path, &mut raw);
        }
        if rule_on("R3") {
            r3_sleeps(&code, i, display_path, &mut raw);
        }
        if rule_on("R4") {
            r4_unwrap(&code, i, display_path, &mut raw);
        }
        if rule_on("R6") {
            r6_prints(&code, i, display_path, &mut raw);
        }
    }

    // Apply allow annotations: a diagnostic survives unless a same-rule
    // allow targets its line.
    for d in raw {
        let hit = allows
            .iter_mut()
            .find(|a| a.rule == d.rule && a.target_line == d.line);
        match hit {
            Some(a) => a.used = true,
            None => report.diags.push(d),
        }
    }
    for a in &allows {
        if !a.used {
            report.diags.push(Diagnostic::new(
                display_path,
                a.line,
                a.col,
                "A2",
                format!(
                    "unused `audit: allow({})` — nothing to suppress on its line",
                    a.rule
                ),
            ));
        }
    }
    report
}

/// R1: `Instant::now`, `SystemTime::now`, `thread_rng` — wall-clock and
/// ambient randomness break bit-identical replay; seeds and timestamps
/// must flow in via config.
fn r1_determinism(code: &[&Token<'_>], i: usize, path: &str, out: &mut Vec<Diagnostic>) {
    let t = code[i];
    if t.kind != TokenKind::Ident {
        return;
    }
    if (t.text == "Instant" || t.text == "SystemTime") && path_call(code, i, "now") {
        out.push(Diagnostic::new(
            path,
            t.line,
            t.col,
            "R1",
            format!(
                "`{}::now` in a deterministic crate — timestamps must flow in via config",
                t.text
            ),
        ));
    }
    if t.text == "thread_rng" || t.text == "from_entropy" {
        out.push(Diagnostic::new(
            path,
            t.line,
            t.col,
            "R1",
            format!(
                "`{}` in a deterministic crate — seeds must flow in via config",
                t.text
            ),
        ));
    }
}

/// R2: `std::fs` paths and `fs::`-qualified calls — file I/O stays
/// behind the sanctioned persistence modules.
fn r2_file_io(code: &[&Token<'_>], i: usize, path: &str, out: &mut Vec<Diagnostic>) {
    let t = code[i];
    if t.kind != TokenKind::Ident || t.text != "fs" {
        return;
    }
    // `std :: fs` (use or inline path) fires at `fs`; a bare `fs ::`
    // after `use std::fs;` fires too. Requiring a `::` on either side
    // keeps struct fields named `fs` out.
    let qualified =
        is_path_sep(code, i.wrapping_sub(2), i.wrapping_sub(1)) || is_path_sep(code, i + 1, i + 2);
    if qualified {
        out.push(Diagnostic::new(
            path,
            t.line,
            t.col,
            "R2",
            "file I/O (`fs`) outside the sanctioned persistence modules".into(),
        ));
    }
}

/// R3: `thread::sleep` and `spin_loop` — blocking waits stay confined to
/// the serve pacing loop and the storage background sealer.
fn r3_sleeps(code: &[&Token<'_>], i: usize, path: &str, out: &mut Vec<Diagnostic>) {
    let t = code[i];
    if t.kind != TokenKind::Ident {
        return;
    }
    if t.text == "thread" && path_call(code, i, "sleep") {
        out.push(Diagnostic::new(
            path,
            t.line,
            t.col,
            "R3",
            "`thread::sleep` outside the sanctioned pacing modules".into(),
        ));
    }
    if t.text == "spin_loop" {
        out.push(Diagnostic::new(
            path,
            t.line,
            t.col,
            "R3",
            "spin loop outside the sanctioned pacing modules".into(),
        ));
    }
}

/// R4: `.unwrap()` / `.expect(` — engine code must fail through typed
/// errors, or justify the panic with an `// audit: allow(R4)` line.
fn r4_unwrap(code: &[&Token<'_>], i: usize, path: &str, out: &mut Vec<Diagnostic>) {
    let t = code[i];
    if t.kind != TokenKind::Ident || (t.text != "unwrap" && t.text != "expect") {
        return;
    }
    let after_dot = i > 0 && code[i - 1].kind == TokenKind::Punct && code[i - 1].text == ".";
    let called = code
        .get(i + 1)
        .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "(");
    if after_dot && called {
        out.push(Diagnostic::new(
            path,
            t.line,
            t.col,
            "R4",
            format!(
                "`.{}(` in non-test engine code — return a typed error or justify with \
                 `// audit: allow(R4) <why>`",
                t.text
            ),
        ));
    }
}

/// R6: `println!` / `eprintln!` (and their non-`ln` forms) — library
/// crates return data, they do not print.
fn r6_prints(code: &[&Token<'_>], i: usize, path: &str, out: &mut Vec<Diagnostic>) {
    let t = code[i];
    if t.kind != TokenKind::Ident {
        return;
    }
    let printer = matches!(t.text, "println" | "eprintln" | "print" | "eprint");
    let bang = code
        .get(i + 1)
        .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "!");
    if printer && bang {
        out.push(Diagnostic::new(
            path,
            t.line,
            t.col,
            "R6",
            format!(
                "`{}!` in library code — return data instead of printing",
                t.text
            ),
        ));
    }
}

/// Is `code[i]` the head of `head :: tail`? (`i` already matched `head`.)
fn path_call(code: &[&Token<'_>], i: usize, tail: &str) -> bool {
    is_path_sep(code, i + 1, i + 2)
        && code
            .get(i + 3)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text == tail)
}

/// Are `code[a]`, `code[a2]` the two `:` of a `::` path separator?
fn is_path_sep(code: &[&Token<'_>], a: usize, a2: usize) -> bool {
    let colon = |j: usize| {
        code.get(j)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text == ":")
    };
    colon(a) && colon(a2)
}

/// Mark every code token inside a `#[cfg(test)]`-attributed item (its
/// attribute through its closing brace). Char/string literals are already
/// single tokens, so `'{'` can not unbalance the brace count.
fn test_mask(code: &[&Token<'_>]) -> Vec<bool> {
    let mut masked = vec![false; code.len()];
    let text = |j: usize| code.get(j).map(|t| t.text);
    let mut i = 0usize;
    while i < code.len() {
        let is_cfg_test = text(i) == Some("#")
            && text(i + 1) == Some("[")
            && text(i + 2) == Some("cfg")
            && text(i + 3) == Some("(")
            && text(i + 4) == Some("test")
            && text(i + 5) == Some(")")
            && text(i + 6) == Some("]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + 7;
        // Scan to the item's body: a `;` first means `mod x;` (nothing to
        // mask beyond the attribute), a `{` opens the block to skip.
        let mut end = code.len();
        while j < code.len() {
            match text(j) {
                Some(";") => {
                    end = j + 1;
                    break;
                }
                Some("{") => {
                    let mut depth = 0usize;
                    while j < code.len() {
                        match text(j) {
                            Some("{") => depth += 1,
                            Some("}") => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    end = (j + 1).min(code.len());
                    break;
                }
                _ => j += 1,
            }
        }
        for m in masked.iter_mut().take(end.min(code.len())).skip(start) {
            *m = true;
        }
        i = end.max(start + 1);
    }
    masked
}

/// Does the file open with `#![forbid(unsafe_code)]`?
fn has_forbid_unsafe(code: &[&Token<'_>]) -> bool {
    let text = |j: usize| code.get(j).map(|t| t.text);
    (0..code.len().saturating_sub(7)).any(|i| {
        text(i) == Some("#")
            && text(i + 1) == Some("!")
            && text(i + 2) == Some("[")
            && text(i + 3) == Some("forbid")
            && text(i + 4) == Some("(")
            && text(i + 5) == Some("unsafe_code")
            && text(i + 6) == Some(")")
            && text(i + 7) == Some("]")
    })
}

/// Is there a `SAFETY:` comment on `unsafe`'s own line or the three lines
/// above it?
fn has_safety_comment(tokens: &[Token<'_>], unsafe_line: u32) -> bool {
    tokens.iter().any(|t| {
        t.is_comment()
            && t.text.contains("SAFETY:")
            && t.end_line() + 3 >= unsafe_line
            && t.line <= unsafe_line
    })
}

/// Pull `// audit: …` annotations out of the comment tokens. Valid
/// allows come back in the list; malformed annotations (A1), unknown rule
/// ids (A1) and missing justifications (A3) surface as diagnostics right
/// away — a broken annotation must never silently suppress anything.
fn collect_allows(tokens: &[Token<'_>], path: &str) -> (Vec<Allow>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut diags = Vec::new();
    for (idx, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let body = tok.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("audit:") else {
            continue;
        };
        let rest = rest.trim();
        let trailing = tokens[..idx]
            .iter()
            .any(|t| t.end_line() == tok.line && !t.is_comment());
        let target_line = if trailing { tok.line } else { tok.line + 1 };
        let parsed = rest
            .strip_prefix("allow(")
            .and_then(|r| r.split_once(')'))
            .map(|(id, just)| (id.trim().to_string(), just.trim().to_string()));
        match parsed {
            None => diags.push(Diagnostic::new(
                path,
                tok.line,
                tok.col,
                "A1",
                format!(
                    "malformed audit annotation — expected `audit: allow(RN) <why>`, got `{rest}`"
                ),
            )),
            Some((id, _)) if !RULE_IDS.contains(&id.as_str()) => diags.push(Diagnostic::new(
                path,
                tok.line,
                tok.col,
                "A1",
                format!("audit annotation names unknown rule id '{id}'"),
            )),
            Some((id, just)) if just.is_empty() => diags.push(Diagnostic::new(
                path,
                tok.line,
                tok.col,
                "A3",
                format!("`audit: allow({id})` without a justification"),
            )),
            Some((id, _)) => allows.push(Allow {
                rule: id,
                target_line,
                line: tok.line,
                col: tok.col,
                used: false,
            }),
        }
    }
    (allows, diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run `check_file` with an empty config (every rule on everywhere)
    /// and summarize diagnostics as `line:col RID`.
    fn diags(src: &str) -> Vec<String> {
        let cfg = AuditConfig::parse("").unwrap();
        check_file("c", "c/src/lib.rs", "c/src/lib.rs", src, &cfg)
            .diags
            .iter()
            .map(|d| format!("{}:{} {}", d.line, d.col, d.rule))
            .collect()
    }

    #[test]
    fn r1_matches_clock_and_rng() {
        assert_eq!(diags("fn f() { let t = Instant::now(); }"), ["1:18 R1"]);
        assert_eq!(diags("let t = SystemTime::now();"), ["1:9 R1"]);
        assert_eq!(diags("let mut rng = thread_rng();"), ["1:15 R1"]);
    }

    #[test]
    fn r1_ignores_comments_and_strings() {
        assert!(diags("// Instant::now() is forbidden here\n").is_empty());
        assert!(diags(r#"let s = "Instant::now()";"#).is_empty());
        assert!(diags(r##"let s = r#"SystemTime::now()"#;"##).is_empty());
        assert!(diags("/* thread_rng() */").is_empty());
        // `Instant::elapsed` or a local `now()` fn are not matches.
        assert!(diags("let e = now(); let d = Instant::from(x);").is_empty());
    }

    #[test]
    fn r2_matches_fs_paths_once() {
        // One diagnostic per use site, not one per path segment.
        assert_eq!(diags("use std::fs;"), ["1:10 R2"]);
        assert_eq!(diags("std::fs::write(p, b)?;"), ["1:6 R2"]);
        assert_eq!(diags("fs::read_to_string(p)?;"), ["1:1 R2"]);
        // A struct field named `fs` is not file I/O.
        assert!(diags("let x = self.fs + 1;").is_empty());
    }

    #[test]
    fn r3_matches_sleep_and_spin() {
        assert_eq!(diags("thread::sleep(d);"), ["1:1 R3"]);
        assert_eq!(diags("std::thread::sleep(d);"), ["1:6 R3"]);
        assert_eq!(diags("std::hint::spin_loop();"), ["1:12 R3"]);
        assert!(diags("let sleep = 3; go(sleep);").is_empty());
    }

    #[test]
    fn r4_matches_unwrap_and_expect_calls_only() {
        assert_eq!(diags("x.unwrap();"), ["1:3 R4"]);
        assert_eq!(diags("x.expect(\"msg\");"), ["1:3 R4"]);
        // Not method calls on a receiver, or different methods entirely.
        assert!(diags("x.unwrap_or(0); x.unwrap_or_else(f);").is_empty());
        assert!(diags("let unwrap = 1;").is_empty());
        assert!(diags(r#"let s = "don't .unwrap() me";"#).is_empty());
        // Tuple-field receiver still caught.
        assert_eq!(diags("pair.0.unwrap();"), ["1:8 R4"]);
    }

    #[test]
    fn r6_matches_prints() {
        assert_eq!(diags(r#"println!("x");"#), ["1:1 R6"]);
        assert_eq!(diags(r#"eprintln!("x");"#), ["1:1 R6"]);
        assert!(diags(r#"writeln!(f, "x");"#).is_empty());
        assert!(diags("// println! in docs\n").is_empty());
    }

    #[test]
    fn cfg_test_blocks_are_masked() {
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); thread::sleep(d); println!(\"ok\"); }
}
";
        assert!(diags(src).is_empty());
        // …but code after the masked block is still checked.
        let src2 = format!("{src}fn after() {{ x.unwrap(); }}\n");
        assert_eq!(diags(&src2), ["6:16 R4"]);
    }

    #[test]
    fn trailing_allow_suppresses_same_line() {
        let src = "x.unwrap(); // audit: allow(R4) startup path, cannot be poisoned\n";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn standalone_allow_suppresses_next_line() {
        let src = "\
// audit: allow(R4) invariant: one report per run by construction
x.unwrap();
";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn allow_only_covers_its_rule_and_line() {
        // Wrong rule id: the R4 fires AND the R3 allow is unused.
        let src = "x.unwrap(); // audit: allow(R3) wrong rule\n";
        let d = diags(src);
        assert!(d.contains(&"1:3 R4".to_string()));
        assert!(d.contains(&"1:13 A2".to_string()));
        // Wrong line: standalone allow two lines above does not reach.
        let src2 = "// audit: allow(R4) too far away\n\nx.unwrap();\n";
        let d2 = diags(src2);
        assert!(d2.contains(&"3:3 R4".to_string()));
        assert!(d2.contains(&"1:1 A2".to_string()));
    }

    #[test]
    fn annotation_errors() {
        // Unknown rule id.
        assert_eq!(diags("// audit: allow(R9) nope\nok();\n"), ["1:1 A1"]);
        // Malformed (not allow(..) at all).
        assert_eq!(diags("// audit: disable(R4)\nok();\n"), ["1:1 A1"]);
        // Missing justification.
        assert_eq!(
            diags("x.unwrap(); // audit: allow(R4)\n"),
            ["1:13 A3", "1:3 R4"]
        );
    }

    #[test]
    fn r5_unsafe_needs_safety_comment() {
        let bad = "fn f() { unsafe { go() } }";
        assert_eq!(diags(bad), ["1:10 R5"]);
        let good = "// SAFETY: ffi contract upheld by construction\nfn f() { unsafe { go() } }";
        assert!(diags(good).is_empty());
        let trailing = "unsafe { go() } // SAFETY: checked above";
        assert!(diags(trailing).is_empty());
        // A SAFETY comment more than three lines up does not count.
        let far = "// SAFETY: stale\n\n\n\nunsafe { go() }";
        assert_eq!(diags(far), ["5:1 R5"]);
    }

    #[test]
    fn r5_counts_unsafe_and_detects_forbid() {
        let cfg = AuditConfig::parse("").unwrap();
        let rep = check_file("c", "p", "p", "#![forbid(unsafe_code)]\nfn f() {}", &cfg);
        assert!(rep.has_forbid_unsafe);
        assert_eq!(rep.unsafe_count, 0);
        // `unsafe` inside a string or comment is not unsafe code.
        let rep2 = check_file("c", "p", "p", r#"let s = "unsafe"; // unsafe"#, &cfg);
        assert_eq!(rep2.unsafe_count, 0);
        // …but unsafe in test code still counts toward the crate total.
        let rep3 = check_file(
            "c",
            "p",
            "p",
            "#[cfg(test)]\nmod t {\n // SAFETY: test\n fn f() { unsafe { g() } } }",
            &cfg,
        );
        assert_eq!(rep3.unsafe_count, 1);
    }

    #[test]
    fn crate_and_path_scoping() {
        let cfg = AuditConfig::parse("[rule R4]\ncrates = storage\n").unwrap();
        let src = "x.unwrap();";
        assert!(check_file("serve", "p", "p", src, &cfg).diags.is_empty());
        assert_eq!(check_file("storage", "p", "p", src, &cfg).diags.len(), 1);

        let cfg2 = AuditConfig::parse("[rule R2]\nallow = storage/src/codec.rs\n").unwrap();
        let io = "std::fs::write(p, b)?;";
        assert!(
            check_file("storage", "d", "storage/src/codec.rs", io, &cfg2)
                .diags
                .is_empty()
        );
        assert_eq!(
            check_file("storage", "d", "storage/src/table.rs", io, &cfg2)
                .diags
                .len(),
            1
        );
    }
}
