//! Sampling strategies: `select` from a fixed pool.

use crate::{Strategy, TestRng};

pub struct Select<T> {
    options: Vec<T>,
}

/// Uniformly selects one of the given options.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "sample::select: no options");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}
