//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::{Strategy, TestRng};

pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Vectors of `size.start..size.end` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "collection::vec: empty size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Sets of roughly `size` distinct elements drawn from `element`. If the
/// element domain is too small to reach the target size, the set saturates
/// at whatever distinct values were found within a bounded attempt budget.
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    assert!(
        size.start < size.end,
        "collection::btree_set: empty size range"
    );
    BTreeSetStrategy { element, size }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let target = self.size.start + rng.below(span.max(1)) as usize;
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < target.saturating_mul(20) + 100 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
