//! Offline shim for the subset of the `proptest` 1.x API used by the VITA
//! property suites.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small, source-compatible property-testing harness: the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros, a [`Strategy`]
//! trait with `prop_map`, range and tuple strategies, `collection::vec`,
//! `collection::btree_set`, and `sample::select`.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case reports its generated inputs (via the
//!   deterministic per-case seed) but is not minimized.
//! - **Deterministic seeding.** Case `i` of test `t` always sees the same
//!   inputs, derived from `hash(t) ^ i` — failures reproduce exactly.
//! - The `PROPTEST_CASES` environment variable *caps* the per-test case
//!   count so CI can enforce a wall-clock budget.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod sample;

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };

    /// Mirror of real proptest's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// A deterministic splitmix64 stream used to drive generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed for case `case` of the test named `name` (stable across runs).
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::new(h ^ ((case as u64) << 32 | case as u64))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Generates values of `Self::Value`. The shim generates eagerly from the
/// RNG; there is no value tree and no shrinking.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_strategies!(f32, f64);

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// A failed property assertion; `prop_assert!` returns this via `Err`.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count to actually run: the configured count, capped by the
    /// `PROPTEST_CASES` environment variable when set (the CI budget knob).
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
        {
            Some(cap) => self.cases.min(cap.max(1)),
            None => self.cases,
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert!({}) failed",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert!({}) failed: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq! failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq! failed: {:?} != {:?}: {}",
                left, right,
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_ne! failed: both sides are {:?}",
                left
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let cases = config.resolved_cases();
            for case in 0..cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest {}: case {}/{} failed: {}",
                        stringify!($name),
                        case,
                        cases,
                        err
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    static RUNS: AtomicU32 = AtomicU32::new(0);

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn macro_runs_every_case(x in 0u64..100, y in -1.0f64..1.0) {
            RUNS.fetch_add(1, Ordering::Relaxed);
            prop_assert!(x < 100);
            prop_assert!((-1.0..1.0).contains(&y));
        }
    }

    #[test]
    fn case_count_observed() {
        macro_runs_every_case();
        let env_cap = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .map(|c| c.clamp(1, 7))
            .unwrap_or(7);
        // `macro_runs_every_case` also runs as its own #[test]; tolerate
        // either one or two full executions having happened by now.
        let runs = RUNS.load(Ordering::Relaxed);
        assert!(
            runs > 0 && runs.is_multiple_of(env_cap),
            "ran {runs} cases, expected a multiple of {env_cap}"
        );
    }

    #[test]
    fn failing_property_is_reported() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(3))]
                #[allow(unused)]
                fn always_fails(x in 0u32..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        assert!(result.is_err(), "prop_assert failure must panic the test");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn strategies_respect_bounds(
            v in prop::collection::vec(1usize..5, 2..6),
            s in prop::collection::btree_set(0u64..1000, 1..10),
            pick in crate::sample::select(vec!["a", "b", "c"]),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| (1..5).contains(&e)));
            prop_assert!((1..10).contains(&s.len()));
            prop_assert!(["a", "b", "c"].contains(&pick));
        }

        #[test]
        fn map_and_tuples_compose(
            p in (0.0f64..1.0, 10u32..20).prop_map(|(f, i)| (f * 100.0, i * 2)),
        ) {
            prop_assert!((0.0..100.0).contains(&p.0));
            prop_assert!(p.1 >= 20 && p.1 < 40);
        }
    }

    #[test]
    fn deterministic_per_case_seed() {
        let mut a = crate::TestRng::for_case("some::test", 3);
        let mut b = crate::TestRng::for_case("some::test", 3);
        let mut c = crate::TestRng::for_case("some::test", 4);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
