//! Offline shim for the subset of the `bytes` 1.x API used by the VITA
//! storage codecs.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors `Bytes`/`BytesMut` backed by plain `Vec<u8>`/cursor types.
//! Semantic difference from the real crate: `Bytes::slice`/`clone` copy
//! instead of refcounting — acceptable at codec-test scale, and invisible
//! at the API level the codecs use.

/// Read cursor over an owned byte buffer.
pub trait Buf {
    fn remaining(&self) -> usize;

    fn chunk(&self) -> &[u8];

    fn advance(&mut self, cnt: usize);

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "Buf::copy_to_slice: out of bounds"
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write cursor appending to an owned byte buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Immutable byte buffer with a read cursor.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Unlike the real crate this copies; ranges are relative to the
    /// unconsumed remainder, matching `Buf` semantics.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len(),
        };
        Bytes {
            data: self.data[self.pos + start..self.pos + end].to_vec(),
            pos: 0,
        }
    }

    /// Split off and return the first `at` unconsumed bytes, advancing
    /// this buffer past them. Copies (see module docs), where the real
    /// crate refcounts.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "Bytes::split_to: out of bounds");
        let head = self.slice(..at);
        self.advance(at);
        head
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "Bytes::advance: out of bounds");
        self.pos += cnt;
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

/// Growable byte buffer.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}
