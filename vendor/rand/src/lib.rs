//! Offline shim for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small, source-compatible reimplementation instead of the real
//! crate. Only what VITA actually calls is provided: `StdRng` (an
//! xoshiro256++ generator), `SeedableRng::seed_from_u64`, the `Rng`
//! extension methods (`gen`, `gen_range`, `gen_bool`), and
//! `seq::SliceRandom` (`choose`, `shuffle`). Streams are deterministic for
//! a given seed, which is all the simulation layers rely on.

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG's raw output
/// (the `Standard` distribution in real rand).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_range_impls!(f32, f64);

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use crate::seq::SliceRandom;
    use crate::{Rng, SeedableRng, StdRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let (x, y, z) = (a.gen::<f64>(), b.gen::<f64>(), c.gen::<f64>());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let f = rng.gen_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&f));
            let i = rng.gen_range(2usize..9);
            assert!((2..9).contains(&i));
            let j = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&j));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(13);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn works_through_unsized_refs() {
        fn takes_dynish<R: crate::RngCore + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(17);
        let v = takes_dynish(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn shuffle_is_permutation_and_choose_hits_members() {
        let mut rng = StdRng::seed_from_u64(19);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
