//! Slice helpers, mirroring `rand::seq::SliceRandom`.

use crate::{Rng, RngCore};

pub trait SliceRandom {
    type Item;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        // Fisher–Yates.
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}
