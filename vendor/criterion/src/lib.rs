//! Offline shim for the subset of the `criterion` 0.5 API used by the
//! VITA benches.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal wall-clock benchmark harness that is source
//! compatible with the criterion surface the `e*.rs` benches use:
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `sample_size`, `throughput`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`, `BenchmarkId`, and `Throughput`. Results are median
//! per-iteration wall times printed to stdout — no statistics, plots, or
//! baselines, but good enough to track orders of magnitude and to keep
//! `cargo bench` runnable offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Runs one benchmark body and records per-iteration timings.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up, discarded.
        for _ in 0..2 {
            black_box(routine());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn median(&self) -> Duration {
        let mut s = self.samples.clone();
        s.sort_unstable();
        s.get(s.len() / 2).copied().unwrap_or_default()
    }
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let name = id.into().id;
        let sample_size = self.sample_size;
        run_one(&name, sample_size, None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    let median = b.median();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  {:.0} elem/s", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!("  {:.0} B/s", n as f64 / median.as_secs_f64())
        }
        _ => String::new(),
    };
    // Printing the result line to stdout IS this shim's job — the
    // real criterion reports the same way.
    #[allow(clippy::print_stdout)]
    {
        println!("bench {name:<48} median {median:>12.3?}{rate}");
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; ignore them.
            $( $group(); )+
        }
    };
}
