//! Offline shim for the `parking_lot` lock API over `std::sync`
//! primitives.
//!
//! The build environment has no access to crates.io. `parking_lot`'s
//! non-poisoning `read()`/`write()`/`lock()` signatures are provided by
//! delegating to `std::sync` and unwrapping poison errors (a panic while
//! holding a lock aborts the test anyway).

use std::sync::{self, LockResult};

fn unpoison<G>(result: LockResult<G>) -> G {
    result.unwrap_or_else(sync::PoisonError::into_inner)
}

#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}
